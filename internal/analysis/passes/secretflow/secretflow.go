// Package secretflow is the compile-time half of the repository's
// obliviousness argument: an interprocedural taint analysis proving that
// nothing observable on the memory bus depends on secret data.
//
// The leakage observatory (internal/attack/leakage) measures empirically
// what an attacker recovers from the wire; this pass proves the
// complementary static property, in the spirit of Haider et al.'s
// definitional framing — obfuscation is a transformation from a secret
// request stream to a wire trace, and the trace must be computable without
// the secrets. Sources are plaintext addresses and data (//obfus:secret
// parameters and fields), ground-truth views (attack.Truth field reads,
// Observer.TruthTrace), and secret-returning functions (bare
// //obfus:secret). Sinks are the wire-observable effects the membus attack
// exploits: event times handed to sim scheduling (Endpoint.Schedule,
// Endpoint.Send, Engine.Schedule/After), bus transfer times (Bus.Transfer),
// and the wire-view fields of bus.Packet (CmdCipher, HasCmd, Data, MAC,
// HasMAC, Channel — the fields attack.Wire projects). A branch on a
// secret-derived condition that guards a wire sink is also reported: the
// choice itself modulates observable traffic.
//
// A flow is legal only through an //obfus:public <reason> declassifier —
// e.g. a sealed command after AES-CTR encryption, or a memory-service time
// the paper's threat model scopes out. Every declassifier carries its
// justification in source, so `git grep obfus:public` is the complete audit
// surface of the security argument.
//
// Findings are reported only inside the obfuscation-relevant packages
// (bus, memctl, obfus, oram, palermo, and golden test packages named
// secretflow); summaries are computed for every package so flows through
// shared helpers stay visible.
package secretflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"

	"obfusmem/internal/analysis/annot"
	"obfusmem/internal/analysis/framework"
)

// Analyzer is the secretflow pass.
var Analyzer = &framework.Analyzer{
	Name: "secretflow",
	Doc:  "forbids secret-derived values from reaching wire-observable sinks (times, packet shapes, secret-guarded branches) outside //obfus:public declassifiers",
	Run:  run,
}

// scoped lists the package basenames whose findings are reported. Summaries
// are still computed everywhere else.
var scoped = map[string]bool{
	"bus":        true,
	"memctl":     true,
	"obfus":      true,
	"oram":       true,
	"palermo":    true,
	"secretflow": true, // golden test packages
}

// wireFields are bus.Packet's wire-observable fields — exactly the view
// attack.Wire projects for the attacker. The ground-truth metadata fields
// (Addr, Type, IsDummy, ...) are not sinks; the wireonly pass polices their
// consumption on the inference side.
var wireFields = map[string]bool{
	"CmdCipher": true, "HasCmd": true, "Data": true,
	"MAC": true, "HasMAC": true, "Channel": true,
}

// sink describes one wire-observable callee: which argument indices (into
// call.Args) the attacker can see.
type sink struct {
	args []int
	what string
}

// sinkTable maps (package basename, Recv.Name function key) to its
// wire-observable arguments.
var sinkTable = map[[2]string]sink{
	{"sim", "Endpoint.Schedule"}: {[]int{0}, "an event timestamp"},
	{"sim", "Endpoint.Send"}:     {[]int{1}, "a cross-shard delivery timestamp"},
	{"sim", "Engine.Schedule"}:   {[]int{0}, "an event timestamp"},
	{"sim", "Engine.After"}:      {[]int{0}, "an event delay"},
	{"sim", "Engine.RunUntil"}:   {[]int{0}, "the simulation horizon"},
	{"bus", "Bus.Transfer"}:      {[]int{0}, "a bus transfer time"},
}

// publicResults lists calls whose results are wire-observable and therefore
// public by definition: the attacker already sees arrival times, so feeding
// them back into later scheduling is the model, not a leak.
var publicResults = map[[2]string]bool{
	{"sim", "Endpoint.Now"}:   true,
	{"sim", "Engine.Now"}:     true,
	{"bus", "Bus.Transfer"}:   true,
	{"bus", "Bus.TransferTime"}: true,
}

func run(pass *framework.Pass) error {
	report := scoped[path.Base(pass.Pkg.Path())] || scoped[pass.Pkg.Name()]

	// Same-package annotation lookup bridges *types.Func back to the
	// declaration the directives hang off. Cross-package lookups go through
	// the module index; golden test packages are not part of the module, so
	// their own annotations must resolve through pass.Annot.
	decls := make(map[string]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok {
				decls[annot.DeclKey(fn)] = fn
			}
		}
	}
	funcArgs := func(fn *types.Func, directive string) ([]string, bool) {
		if fn == nil {
			return nil, false
		}
		if fn.Pkg() == pass.Pkg {
			if decl, ok := decls[annot.FuncKey(fn)]; ok {
				return pass.Annot.FuncArgs(decl, directive)
			}
			return nil, false
		}
		return pass.Module.FuncArgs(fn, directive)
	}

	spec := &framework.TaintSpec{
		Analyzer: "secretflow",
		SinkArgs: func(fn *types.Func) ([]int, string) {
			if s, ok := sinkTable[funcID(fn)]; ok {
				return s.args, s.what
			}
			return nil, ""
		},
		SinkField: func(owner types.Type, field *types.Var) (string, bool) {
			name, pkg := namedOf(owner)
			if name == "Packet" && pkg == "bus" && wireFields[field.Name()] {
				return "a wire-observable bus.Packet field (the attack.Wire view)", true
			}
			return "", false
		},
		SourceCall: func(fn *types.Func) bool {
			if id := funcID(fn); id[0] == "attack" && id[1] == "Observer.TruthTrace" {
				return true
			}
			args, ok := funcArgs(fn, annot.Secret)
			return ok && len(args) == 0 // bare //obfus:secret: results are secret
		},
		SecretField: func(owner types.Type, field *types.Var) bool {
			name, pkg := namedOf(owner)
			if name == "Truth" && pkg == "attack" {
				return true // ground truth is secret by construction
			}
			if name == "" {
				return false
			}
			if field.Pkg() == pass.Pkg {
				return pass.Annot.FieldHas(name, field.Name(), annot.Secret)
			}
			return pass.Module.FieldHas(field.Pkg(), name, field.Name(), annot.Secret)
		},
		SecretParams: func(decl *ast.FuncDecl) map[string]bool {
			args, ok := pass.Annot.FuncArgs(decl, annot.Secret)
			if !ok || len(args) == 0 {
				return nil
			}
			set := make(map[string]bool, len(args))
			for _, a := range args {
				set[a] = true
			}
			return set
		},
		PublicFn: func(fn *types.Func) bool {
			_, ok := funcArgs(fn, annot.Public)
			return ok
		},
		PublicResults: func(fn *types.Func) bool {
			return publicResults[funcID(fn)]
		},
		Report: func(pos token.Pos, rule, format string, args ...any) {
			if report {
				pass.ReportRulef(pos, rule, format, args...)
			}
		},
	}
	ta := &framework.TaintAnalysis{Pass: pass, Spec: spec}
	ta.Run()
	return nil
}

// funcID keys a function by (declaring package basename, Recv.Name).
func funcID(fn *types.Func) [2]string {
	if fn == nil || fn.Pkg() == nil {
		return [2]string{}
	}
	return [2]string{path.Base(fn.Pkg().Path()), annot.FuncKey(fn)}
}

// namedOf resolves a (possibly pointer) type to its named type and
// declaring package basename.
func namedOf(t types.Type) (name, pkg string) {
	if t == nil {
		return "", ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return "", ""
	}
	return n.Obj().Name(), n.Obj().Pkg().Name()
}
