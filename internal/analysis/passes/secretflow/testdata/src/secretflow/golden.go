// Package secretflow is the golden corpus for the secretflow analyzer: each
// flagged line seeds one way a secret can shape the wire, and the unflagged
// lines pin the analyzer's negative space (declassified, suppressed, and
// genuinely clean flows stay silent).
package secretflow

import (
	"obfusmem/internal/attack"
	"obfusmem/internal/bus"
	"obfusmem/internal/sim"
)

func tick() {}

// directFlow seeds the canonical violation: a plaintext address modulates an
// event timestamp.
//
//obfus:secret addr
func directFlow(eng *sim.Engine, addr uint64) {
	at := sim.Time(addr % 64)
	eng.Schedule(at, tick) // want "secret-derived value reaches Schedule"
}

// helper is an unannotated pure function; the engine's summary must carry
// its parameter through to the result.
func helper(x uint64) uint64 { return x*2 + 1 }

// interprocFlow seeds the same violation laundered through a helper call.
//
//obfus:secret addr
func interprocFlow(eng *sim.Engine, addr uint64) {
	delay := helper(addr)
	eng.After(sim.Time(delay), tick) // want "secret-derived value reaches After"
}

// scheduleAt sinks its parameter; callers passing secrets must be reported
// at their call site via the callee's summary.
func scheduleAt(eng *sim.Engine, t sim.Time) {
	eng.Schedule(t, tick)
}

//obfus:secret addr
func flowIntoCallee(eng *sim.Engine, addr uint64) {
	scheduleAt(eng, sim.Time(addr)) // want "flows to a wire-observable sink inside scheduleAt"
}

// guardedBranch seeds the implicit flow: no secret value reaches the wire,
// but the *choice* to emit traffic depends on one.
//
//obfus:secret addr
func guardedBranch(eng *sim.Engine, addr uint64) {
	if addr > 1024 { // want "branch on a secret-derived condition"
		eng.Schedule(100, tick)
	}
}

// packetShape seeds secret-dependent packet contents: stores into the
// wire-view fields of bus.Packet.
//
//obfus:secret data
func packetShape(p *bus.Packet, data []byte) {
	p.Data = data // want "secret-derived value stored into Data"
	p.Addr = 7    // truth metadata, not on the wire: silent
}

//obfus:secret data
func packetLiteral(data []byte) *bus.Packet {
	return &bus.Packet{
		Data: data, // want "secret-derived value stored into Data"
	}
}

// request carries an annotated secret field.
type request struct {
	addr uint64 //obfus:secret
	seq  int
}

func fieldSource(eng *sim.Engine, r request) {
	eng.Schedule(sim.Time(r.addr), tick) // want "secret-derived value reaches Schedule"
	eng.Schedule(sim.Time(r.seq), tick)  // unannotated field: silent
}

// truthAddr is a bare //obfus:secret function: its results are sources.
//
//obfus:secret
func truthAddr() uint64 { return 42 }

func sourceCall(eng *sim.Engine) {
	eng.Schedule(sim.Time(truthAddr()), tick) // want "secret-derived value reaches Schedule"
}

// groundTruth reads the attacker-hidden projection of a recorded transfer.
func groundTruth(eng *sim.Engine, tr attack.Truth) {
	eng.Schedule(sim.Time(tr.Addr), tick) // want "secret-derived value reaches Schedule"
}

// seal models a declassifier: ciphertext is safe for the wire, and the
// annotation carries the auditable reason.
//
//obfus:secret addr
//obfus:public ciphertext after AES sealing is indistinguishable from noise
func seal(addr uint64) uint64 { return addr ^ 0xdecafbad }

//obfus:secret addr
func declassified(eng *sim.Engine, addr uint64) {
	eng.Schedule(sim.Time(seal(addr)), tick) // laundered through the declassifier: silent
}

// suppressed shows the audited escape hatch: a reasoned //lint:allow.
//
//obfus:secret addr
func suppressed(eng *sim.Engine, addr uint64) {
	eng.Schedule(sim.Time(addr), tick) //lint:allow secretflow golden exercise of the suppression path
}

// cleanFlow pins the negative space: public values may schedule freely, and
// wire-observable results (arrival times) are public by definition.
func cleanFlow(eng *sim.Engine, b *bus.Bus, p *bus.Packet) {
	arrive, _ := b.Transfer(eng.Now(), p)
	eng.Schedule(arrive+5, tick)
}
