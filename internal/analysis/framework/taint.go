// Interprocedural taint dataflow. This is the engine under the secretflow
// analyzer: a pass instantiates TaintAnalysis with a TaintSpec describing
// its sources (secret-bearing calls, fields, and parameters), sinks
// (wire-observable call arguments and struct fields), and declassifiers,
// and the engine does the rest — def-use propagation over go/types objects
// inside each function (iterated in CFG reverse postorder to a fixpoint),
// field-based propagation across functions of a package, and per-function
// summaries exported through the run's Facts store so flows through calls
// into already-analyzed packages are followed without re-walking them.
//
// The lattice is a 64-bit mask: bit 63 is "definitely secret-tainted"; bits
// 0..61 name the enclosing function's parameters, which is how summaries
// stay polyvariant ("result 0 carries whatever parameter 2 carried") without
// re-analyzing callees per call site. Three precision choices are
// deliberate and documented in DESIGN.md §11:
//
//   - Field stores are tracked per *field* (one mask per struct field of the
//     package, any instance), not per object: precise enough to follow a
//     plaintext address through a pending-write queue, cheap enough to run
//     on every build. Only the secret bit crosses functions through fields —
//     parameter bits are meaningless outside their function.
//   - Only explicit flows propagate through assignments. The one implicit
//     flow the analyzer models is the one the threat model cares about: a
//     branch whose condition is tainted and whose body reaches a wire sink
//     is reported (rule secret-guard), because the *choice* then modulates
//     observable traffic even if no tainted value reaches the wire.
//   - Values returned by wire sinks (e.g. a bus arrival time) are public by
//     definition: the attacker already sees the wire, so feeding observable
//     times back into later scheduling is the model working as designed.
package framework

import (
	"go/ast"
	"go/token"
	"go/types"
)

// TaintMask is the dataflow lattice element: a union of taint origins.
type TaintMask uint64

// TaintSecret marks a value derived from a concrete secret source.
const TaintSecret TaintMask = 1 << 63

// ParamBit returns the mask bit naming flat parameter i (receiver first).
// Parameters beyond the mask width saturate to secret-free zero — no
// function in this module has 62 parameters, and losing a bit would only
// lose precision, never a secret (secrets ride the dedicated bit).
func ParamBit(i int) TaintMask {
	if i < 0 || i >= 62 {
		return 0
	}
	return 1 << uint(i)
}

// TaintSummary is one function's exported dataflow fact.
type TaintSummary struct {
	// Results holds, per result value, the parameter bits (and possibly
	// TaintSecret) that flow into it.
	Results []TaintMask
	// ParamSink is the set of parameter bits that reach a wire sink
	// somewhere inside the function (transitively).
	ParamSink TaintMask
	// SinksInside reports whether any wire sink is reachable in the
	// function body (transitively) — the guard rule's reachability fact.
	SinksInside bool
	// Public marks a declassifier: callers treat every result as clean.
	Public bool
}

func (s *TaintSummary) equal(o *TaintSummary) bool {
	if o == nil || s.ParamSink != o.ParamSink || s.SinksInside != o.SinksInside || s.Public != o.Public || len(s.Results) != len(o.Results) {
		return false
	}
	for i := range s.Results {
		if s.Results[i] != o.Results[i] {
			return false
		}
	}
	return true
}

// TaintSpec is the pass-supplied source/sink/declassifier model.
type TaintSpec struct {
	// Analyzer names the Facts namespace summaries live in.
	Analyzer string
	// SinkArgs returns the indices (into call.Args) of fn's wire-observable
	// arguments, with a human-readable description, or nil.
	SinkArgs func(fn *types.Func) (args []int, what string)
	// SinkField reports whether storing into this field writes something
	// wire-observable (owner is the field's struct type, nil if unknown).
	SinkField func(owner types.Type, field *types.Var) (what string, ok bool)
	// SourceCall reports whether fn's results are secret.
	SourceCall func(fn *types.Func) bool
	// SecretField reports whether reading this field yields a secret.
	SecretField func(owner types.Type, field *types.Var) bool
	// SecretParams returns the names of decl's parameters that are secret
	// at entry (from its //obfus:secret annotation), or nil.
	SecretParams func(decl *ast.FuncDecl) map[string]bool
	// PublicFn reports whether fn is an annotated declassifier.
	PublicFn func(fn *types.Func) bool
	// PublicResults reports whether fn's results are wire-observable and
	// therefore public by definition (e.g. bus arrival times).
	PublicResults func(fn *types.Func) bool
	// Report receives the findings during the final reporting sweep.
	Report func(pos token.Pos, rule, format string, args ...any)
}

// TaintAnalysis runs the engine over one package.
type TaintAnalysis struct {
	Pass *Pass
	Spec *TaintSpec

	fieldTm map[*types.Var]TaintMask // per-field secret propagation
	sums    map[string]*TaintSummary // this package's summaries, by decl key
	decls   []*ast.FuncDecl
}

// Run analyzes every function of the pass's package to a fixpoint, reports
// the findings, and exports one summary per function into Pass.Facts.
func (ta *TaintAnalysis) Run() {
	ta.fieldTm = make(map[*types.Var]TaintMask)
	ta.sums = make(map[string]*TaintSummary)
	for _, file := range ta.Pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				ta.decls = append(ta.decls, fn)
			}
		}
	}
	// Package-level fixpoint: summaries and field masks grow monotonically,
	// so iteration terminates; the bound is belt and braces.
	for iter := 0; iter < 16; iter++ {
		changed := false
		for _, decl := range ta.decls {
			sum := ta.analyzeFunc(decl, false)
			key := annotDeclKey(decl)
			if !sum.equal(ta.sums[key]) {
				ta.sums[key] = sum
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, decl := range ta.decls {
		ta.analyzeFunc(decl, true)
	}
	if ta.Pass.Facts != nil {
		for key, sum := range ta.sums {
			ta.Pass.Facts.Export(ta.Spec.Analyzer, ta.Pass.Pkg.Path(), key, sum)
		}
	}
}

// summaryFor resolves a callee's summary: same-package summaries from the
// current fixpoint state, cross-package ones from the Facts store.
func (ta *TaintAnalysis) summaryFor(fn *types.Func) *TaintSummary {
	if fn.Pkg() == nil {
		return nil
	}
	key := FuncKey(fn)
	if fn.Pkg() == ta.Pass.Pkg {
		return ta.sums[key]
	}
	if s, ok := ta.Pass.Facts.Import(ta.Spec.Analyzer, fn.Pkg().Path(), key).(*TaintSummary); ok {
		return s
	}
	return nil
}

// funcUnit is one analyzable body: the declaration itself or a function
// literal inside it. Literal parameters carry no parameter bits — their
// masks arrive by binding at (closure-variable) call sites.
type funcUnit struct {
	body    *ast.BlockStmt
	ftype   *ast.FuncType
	results []TaintMask
	named   []*types.Var // named result objects, for naked returns
}

// taintState is the per-function engine state.
type taintState struct {
	ta     *TaintAnalysis
	pass   *Pass
	tm     map[types.Object]TaintMask
	lits   map[types.Object]*ast.FuncLit // local closure bindings
	units  map[*ast.FuncLit]*funcUnit
	outer  *funcUnit
	sum    *TaintSummary
	report bool
	change bool
}

// analyzeFunc runs the intra-function fixpoint for one declaration. With
// report set it additionally emits diagnostics for secret-tainted sinks.
func (ta *TaintAnalysis) analyzeFunc(decl *ast.FuncDecl, report bool) *TaintSummary {
	st := &taintState{
		ta:     ta,
		pass:   ta.Pass,
		tm:     make(map[types.Object]TaintMask),
		lits:   make(map[types.Object]*ast.FuncLit),
		units:  make(map[*ast.FuncLit]*funcUnit),
		sum:    &TaintSummary{},
		report: false, // quiet through the fixpoint; one reporting sweep below
	}
	// Flat parameter objects: receiver first, then parameters.
	var params []*types.Var
	if decl.Recv != nil && len(decl.Recv.List) > 0 && len(decl.Recv.List[0].Names) > 0 {
		if obj, ok := ta.Pass.TypesInfo.Defs[decl.Recv.List[0].Names[0]].(*types.Var); ok {
			params = append(params, obj)
		}
	}
	for _, f := range decl.Type.Params.List {
		for _, name := range f.Names {
			if obj, ok := ta.Pass.TypesInfo.Defs[name].(*types.Var); ok {
				params = append(params, obj)
			}
		}
	}
	secretNames := ta.Spec.SecretParams(decl)
	for i, p := range params {
		st.tm[p] = ParamBit(i)
		if secretNames[p.Name()] {
			st.tm[p] |= TaintSecret
		}
	}
	st.outer = &funcUnit{body: decl.Body, ftype: decl.Type}
	st.outer.results = make([]TaintMask, resultCount(decl.Type))
	st.outer.named = namedResults(ta.Pass, decl.Type)
	st.collectLits(decl.Body)

	// Intra-function fixpoint over the unit set, statements in CFG reverse
	// postorder. Masks grow monotonically, so this terminates; the bound
	// only caps pathological cases.
	orders := map[*funcUnit][]ast.Stmt{}
	order := func(u *funcUnit) []ast.Stmt {
		if s, ok := orders[u]; ok {
			return s
		}
		var stmts []ast.Stmt
		for _, b := range NewCFG(u.body).ReversePostorder() {
			stmts = append(stmts, b.Stmts...)
		}
		orders[u] = stmts
		return stmts
	}
	for iter := 0; iter < 32; iter++ {
		st.change = false
		for _, u := range st.allUnits() {
			for _, s := range order(u) {
				st.stmt(u, s)
			}
		}
		if !st.change {
			break
		}
	}
	if report {
		// Reporting sweep: one more pass over the converged state, the only
		// one with reporting enabled so each finding fires exactly once.
		st.report = true
		for _, u := range st.allUnits() {
			for _, s := range order(u) {
				st.stmt(u, s)
			}
		}
	}
	// The guard rule: tainted branch conditions over wire-reaching regions.
	st.guards(decl.Body)

	sum := st.sum
	sum.Results = st.outer.results
	// Keep only parameter bits in exported masks; locals' bits mean nothing
	// to callers. The secret bit passes through.
	for i := range sum.Results {
		sum.Results[i] &= paramMaskOf(len(params)) | TaintSecret
	}
	sum.ParamSink &= paramMaskOf(len(params))
	if ta.Spec.PublicFn(declFunc(ta.Pass, decl)) {
		sum.Public = true
	}
	return sum
}

func paramMaskOf(n int) TaintMask {
	var m TaintMask
	for i := 0; i < n; i++ {
		m |= ParamBit(i)
	}
	return m
}

func declFunc(pass *Pass, decl *ast.FuncDecl) *types.Func {
	fn, _ := pass.TypesInfo.Defs[decl.Name].(*types.Func)
	return fn
}

func resultCount(ft *ast.FuncType) int {
	if ft.Results == nil {
		return 0
	}
	n := 0
	for _, f := range ft.Results.List {
		if len(f.Names) == 0 {
			n++
		} else {
			n += len(f.Names)
		}
	}
	return n
}

func namedResults(pass *Pass, ft *ast.FuncType) []*types.Var {
	if ft.Results == nil {
		return nil
	}
	var out []*types.Var
	for _, f := range ft.Results.List {
		for _, name := range f.Names {
			if obj, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
				out = append(out, obj)
			}
		}
	}
	return out
}

// collectLits indexes every function literal and its local variable
// bindings (x := func(...){...}), so closure calls can bind argument masks.
func (st *taintState) collectLits(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			st.units[n] = &funcUnit{
				body:    n.Body,
				ftype:   n.Type,
				results: make([]TaintMask, resultCount(n.Type)),
				named:   namedResults(st.pass, n.Type),
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if lit, ok := rhs.(*ast.FuncLit); ok && i < len(n.Lhs) {
					if obj := exprObj(st.pass, n.Lhs[i]); obj != nil {
						st.lits[obj] = lit
					}
				}
			}
		}
		return true
	})
}

// allUnits returns the outer unit plus every literal unit, outer first.
func (st *taintState) allUnits() []*funcUnit {
	out := []*funcUnit{st.outer}
	ast.Inspect(st.outer.body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			out = append(out, st.units[lit])
		}
		return true
	})
	return out
}

// stmt applies one statement's transfer function for unit u. Control-flow
// statements never appear here (the CFG decomposed them); nested FuncLit
// bodies are separate units, so expression evaluation must not descend into
// them — eval treats a FuncLit as an opaque, clean value.
func (st *taintState) stmt(u *funcUnit, s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		st.assignStmt(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						st.assign(name, st.eval(vs.Values[i]))
					}
				}
			}
		}
	case *ast.ExprStmt:
		st.eval(s.X)
	case *ast.ReturnStmt:
		if len(s.Results) == 0 {
			for i, obj := range u.named {
				if i < len(u.results) {
					st.grow(&u.results[i], st.tm[obj])
				}
			}
			return
		}
		if len(s.Results) == 1 && len(u.results) > 1 {
			// return f() returning a tuple
			masks := st.callMasks(s.Results[0], len(u.results))
			for i := range u.results {
				st.grow(&u.results[i], masks[i])
			}
			return
		}
		for i, r := range s.Results {
			if i < len(u.results) {
				st.grow(&u.results[i], st.eval(r))
			}
		}
	case *ast.RangeStmt:
		m := st.eval(s.X)
		if s.Key != nil {
			st.assign(s.Key, m)
		}
		if s.Value != nil {
			st.assign(s.Value, m)
		}
	case *ast.IncDecStmt:
		st.eval(s.X)
	case *ast.SendStmt:
		st.eval(s.Chan)
		st.eval(s.Value)
	case *ast.GoStmt:
		st.eval(s.Call)
	case *ast.DeferStmt:
		st.eval(s.Call)
	case *ast.LabeledStmt:
		st.stmt(u, s.Stmt)
	}
}

func (st *taintState) assignStmt(s *ast.AssignStmt) {
	if len(s.Lhs) > 1 && len(s.Rhs) == 1 {
		masks := st.callMasks(s.Rhs[0], len(s.Lhs))
		for i, lhs := range s.Lhs {
			st.assign(lhs, masks[i])
		}
		return
	}
	for i, lhs := range s.Lhs {
		if i < len(s.Rhs) {
			st.assign(lhs, st.eval(s.Rhs[i]))
		}
	}
}

// callMasks evaluates a multi-value expression into n per-value masks.
func (st *taintState) callMasks(e ast.Expr, n int) []TaintMask {
	out := make([]TaintMask, n)
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		masks := st.call(call)
		for i := range out {
			if i < len(masks) {
				out[i] = masks[i]
			}
		}
		return out
	}
	// v, ok := m[k] / x.(T) / <-ch style: the value carries the operand mask.
	m := st.eval(e)
	for i := range out {
		out[i] = m
	}
	return out
}

// grow unions mask into *dst, tracking the fixpoint's changed flag.
func (st *taintState) grow(dst *TaintMask, m TaintMask) {
	if *dst|m != *dst {
		*dst |= m
		st.change = true
	}
}

// assign writes mask into an lvalue: variables keep full masks, field
// stores keep the secret bit per field (and are checked as wire sinks),
// element stores coarsely taint the container.
func (st *taintState) assign(lhs ast.Expr, mask TaintMask) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		if obj := exprObj(st.pass, l); obj != nil {
			m := st.tm[obj]
			st.grow(&m, mask)
			st.tm[obj] = m
		}
	case *ast.SelectorExpr:
		if sel, ok := st.pass.TypesInfo.Selections[l]; ok && sel.Kind() == types.FieldVal {
			field, _ := sel.Obj().(*types.Var)
			if field != nil {
				st.checkSinkField(l.Sel.Pos(), sel.Recv(), field, mask)
				m := st.ta.fieldTm[field]
				st.grow(&m, mask&TaintSecret)
				st.ta.fieldTm[field] = m
			}
			return
		}
		// Qualified package-level var: taint the object.
		if obj := exprObj(st.pass, l.Sel); obj != nil {
			m := st.tm[obj]
			st.grow(&m, mask)
			st.tm[obj] = m
		}
	case *ast.IndexExpr:
		if root := rootObj(st.pass, l.X); root != nil {
			m := st.tm[root]
			st.grow(&m, mask|st.eval(l.Index))
			st.tm[root] = m
		}
	case *ast.StarExpr:
		if root := rootObj(st.pass, l.X); root != nil {
			m := st.tm[root]
			st.grow(&m, mask)
			st.tm[root] = m
		}
	}
}

// checkSinkField records (and in the reporting sweep, reports) a store of a
// tainted value into a wire-observable field.
func (st *taintState) checkSinkField(pos token.Pos, owner types.Type, field *types.Var, mask TaintMask) {
	what, ok := st.ta.Spec.SinkField(owner, field)
	if !ok {
		return
	}
	st.sum.SinksInside = true
	st.grow(&st.sum.ParamSink, mask&^TaintSecret)
	if st.report && mask&TaintSecret != 0 {
		st.ta.Spec.Report(pos, "packet-shape", "secret-derived value stored into %s: %s", field.Name(), what)
	}
}

// eval returns the taint mask of an expression.
func (st *taintState) eval(e ast.Expr) TaintMask {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := exprObj(st.pass, e); obj != nil {
			return st.tm[obj]
		}
	case *ast.ParenExpr:
		return st.eval(e.X)
	case *ast.SelectorExpr:
		if sel, ok := st.pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
			// Field reads are field-based, not object-based: x.f carries
			// what has ever been stored into f (plus f's annotation), NOT
			// the whole-struct mask of x. This is the precision that lets a
			// mixed struct carry a secret address and a public ready-time
			// side by side without the public field inheriting the taint.
			field, _ := sel.Obj().(*types.Var)
			var m TaintMask
			if field != nil {
				if st.ta.Spec.SecretField(sel.Recv(), field) {
					m |= TaintSecret
				}
				m |= st.ta.fieldTm[field]
			}
			st.eval(e.X) // still walk the base for its side effects (calls)
			return m
		}
		// Qualified ident (pkg.Var) or method value.
		if obj := exprObj(st.pass, e.Sel); obj != nil {
			if v, ok := obj.(*types.Var); ok {
				return st.tm[v]
			}
		}
		return 0
	case *ast.StarExpr:
		return st.eval(e.X)
	case *ast.UnaryExpr:
		return st.eval(e.X)
	case *ast.BinaryExpr:
		return st.eval(e.X) | st.eval(e.Y)
	case *ast.IndexExpr:
		// Generic instantiation of a function shows up as IndexExpr too;
		// for container reads, the element carries container | index taint
		// (a secret-indexed read of a public table is secret-shaped).
		return st.eval(e.X) | st.eval(e.Index)
	case *ast.SliceExpr:
		m := st.eval(e.X)
		for _, idx := range []ast.Expr{e.Low, e.High, e.Max} {
			if idx != nil {
				m |= st.eval(idx)
			}
		}
		return m
	case *ast.CompositeLit:
		return st.compositeLit(e)
	case *ast.TypeAssertExpr:
		return st.eval(e.X)
	case *ast.CallExpr:
		masks := st.call(e)
		var m TaintMask
		for _, r := range masks {
			m |= r
		}
		return m
	case *ast.FuncLit:
		return 0 // bodies are separate units
	}
	return 0
}

// compositeLit unions element masks and checks keyed struct fields against
// the sink-field table (a bus.Packet literal is a store into every field it
// names).
func (st *taintState) compositeLit(lit *ast.CompositeLit) TaintMask {
	var m TaintMask
	owner := st.pass.TypesInfo.TypeOf(lit)
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			m |= st.eval(el)
			continue
		}
		vm := st.eval(kv.Value)
		m |= vm
		if key, ok := kv.Key.(*ast.Ident); ok {
			if field, ok := st.pass.TypesInfo.Uses[key].(*types.Var); ok && field.IsField() {
				st.checkSinkField(kv.Value.Pos(), owner, field, vm)
				// A keyed literal is a field store: feed the field mask.
				fm := st.ta.fieldTm[field]
				st.grow(&fm, vm&TaintSecret)
				st.ta.fieldTm[field] = fm
			}
		}
	}
	return m
}

// call applies a call's transfer function and returns per-result masks.
func (st *taintState) call(call *ast.CallExpr) []TaintMask {
	fun := ast.Unparen(call.Fun)

	// Conversion: T(x).
	if tv, ok := st.pass.TypesInfo.Types[fun]; ok && tv.IsType() {
		return []TaintMask{st.evalArgs(call, 0)}
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := st.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				return []TaintMask{st.evalArgs(call, 1)} // size taints the result
			case "new", "recover":
				return []TaintMask{0}
			case "copy":
				if len(call.Args) == 2 {
					st.assign(call.Args[0], st.eval(call.Args[1]))
				}
				return []TaintMask{0}
			default:
				return []TaintMask{st.evalArgs(call, 0)}
			}
		}
	}

	fn := staticCallee(st.pass, call)
	if fn == nil {
		// Dynamic call: a known local closure binds its parameters;
		// otherwise propagate the union of arguments.
		if obj := calleeObj(st.pass, call); obj != nil {
			if lit, ok := st.lits[obj]; ok {
				return st.closureCall(lit, call)
			}
		}
		return []TaintMask{st.evalArgs(call, 0)}
	}

	// Flat argument masks: receiver (for method calls) first.
	var args []TaintMask
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if s, ok := st.pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.MethodVal {
			args = append(args, st.eval(sel.X))
		}
	}
	for _, a := range call.Args {
		args = append(args, st.eval(a))
	}

	// Hard-coded wire sinks.
	if sinkArgs, what := st.ta.Spec.SinkArgs(fn); sinkArgs != nil {
		st.sum.SinksInside = true
		for _, i := range sinkArgs {
			if i < 0 || i >= len(call.Args) {
				continue
			}
			m := st.eval(call.Args[i])
			st.grow(&st.sum.ParamSink, m&^TaintSecret)
			if st.report && m&TaintSecret != 0 {
				st.ta.Spec.Report(call.Args[i].Pos(), "secret-to-sink",
					"secret-derived value reaches %s (%s): nothing observable on the wire may depend on a secret", fn.Name(), what)
			}
		}
	}

	// Sources and declassifiers take precedence over summaries.
	nres := callResults(st.pass, call)
	if st.ta.Spec.SourceCall(fn) {
		return uniformMasks(nres, TaintSecret)
	}
	if st.ta.Spec.PublicFn(fn) || st.ta.Spec.PublicResults(fn) {
		return uniformMasks(nres, 0)
	}

	if sum := st.ta.summaryFor(fn); sum != nil {
		if sum.SinksInside {
			st.sum.SinksInside = true
		}
		// Arguments whose mask reaches a sink inside the callee: one report
		// per call site however many arguments leak.
		leaking := false
		for j, am := range args {
			if sum.ParamSink&ParamBit(j) == 0 {
				continue
			}
			st.grow(&st.sum.ParamSink, am&^TaintSecret)
			leaking = leaking || am&TaintSecret != 0
		}
		if leaking && st.report {
			st.ta.Spec.Report(call.Pos(), "secret-to-sink",
				"secret-derived argument flows to a wire-observable sink inside %s", fn.Name())
		}
		if sum.Public {
			return uniformMasks(nres, 0)
		}
		out := make([]TaintMask, nres)
		for i := 0; i < nres && i < len(sum.Results); i++ {
			rm := sum.Results[i]
			out[i] = rm & TaintSecret
			for j, am := range args {
				if rm&ParamBit(j) != 0 {
					out[i] |= am
				}
			}
		}
		return out
	}

	// Unknown callee (stdlib, unanalyzed package): conservative propagate.
	var m TaintMask
	for _, am := range args {
		m |= am
	}
	return uniformMasks(nres, m)
}

// closureCall binds argument masks into a local literal's parameters and
// returns its current result masks.
func (st *taintState) closureCall(lit *ast.FuncLit, call *ast.CallExpr) []TaintMask {
	u := st.units[lit]
	var params []*types.Var
	for _, f := range lit.Type.Params.List {
		for _, name := range f.Names {
			if obj, ok := st.pass.TypesInfo.Defs[name].(*types.Var); ok {
				params = append(params, obj)
			}
		}
	}
	for i, a := range call.Args {
		if i < len(params) {
			m := st.tm[params[i]]
			st.grow(&m, st.eval(a))
			st.tm[params[i]] = m
		}
	}
	if u == nil {
		return []TaintMask{0}
	}
	out := make([]TaintMask, len(u.results))
	copy(out, u.results)
	if len(out) == 0 {
		out = []TaintMask{0}
	}
	return out
}

func (st *taintState) evalArgs(call *ast.CallExpr, from int) TaintMask {
	var m TaintMask
	for i, a := range call.Args {
		if i >= from {
			m |= st.eval(a)
		}
	}
	return m
}

func uniformMasks(n int, m TaintMask) []TaintMask {
	if n <= 0 {
		n = 1
	}
	out := make([]TaintMask, n)
	for i := range out {
		out[i] = m
	}
	return out
}

// callResults returns the number of values a call produces.
func callResults(pass *Pass, call *ast.CallExpr) int {
	t := pass.TypesInfo.TypeOf(call)
	if t == nil {
		return 1
	}
	if tup, ok := t.(*types.Tuple); ok {
		return tup.Len()
	}
	return 1
}

// guards walks the body for the implicit-flow rule: a branch condition
// carrying taint over a region that (transitively) reaches a wire sink.
func (st *taintState) guards(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		var cond ast.Expr
		var region ast.Node
		switch n := n.(type) {
		case *ast.IfStmt:
			cond, region = n.Cond, n
		case *ast.SwitchStmt:
			if n.Tag == nil {
				return true
			}
			cond, region = n.Tag, n.Body
		default:
			return true
		}
		m := st.eval(cond)
		if m == 0 || !st.reachesWire(region) {
			return true
		}
		st.sum.SinksInside = true
		st.grow(&st.sum.ParamSink, m&^TaintSecret)
		if st.report && m&TaintSecret != 0 {
			st.ta.Spec.Report(cond.Pos(), "secret-guard",
				"branch on a secret-derived condition guards wire-observable effects: the choice itself modulates observable traffic")
		}
		return true
	})
}

// reachesWire reports whether the subtree contains a call that is a wire
// sink or whose summary says a sink is reachable inside.
func (st *taintState) reachesWire(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(st.pass, call)
		if fn == nil {
			return true
		}
		if args, _ := st.ta.Spec.SinkArgs(fn); args != nil {
			found = true
			return false
		}
		if sum := st.ta.summaryFor(fn); sum != nil && sum.SinksInside {
			found = true
			return false
		}
		return true
	})
	return found
}

// staticCallee resolves a call's static *types.Func, or nil.
func staticCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	fn, _ := calleeObj(pass, call).(*types.Func)
	return fn
}

func calleeObj(pass *Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

// exprObj resolves an identifier-shaped expression to its object.
func exprObj(pass *Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}

// rootObj strips selectors, indexes, derefs, and calls down to the base
// identifier's object.
func rootObj(pass *Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return exprObj(pass, x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.CallExpr:
			return nil
		default:
			return nil
		}
	}
}
