// Control-flow graphs for the interprocedural passes.
//
// The CFG is deliberately small: basic blocks of statements with successor
// edges, built syntactically from one function body. The dataflow engine
// (taint.go) iterates its transfer functions over blocks in reverse
// postorder, which converges the fixpoint in one or two sweeps instead of
// the quadratic behaviour a source-order walk can hit on long dependency
// chains; passes can also query it for reachability ("is there a wire sink
// downstream of this branch?"). Panics, goto, and labeled breaks are
// handled conservatively — an edge too many never loses a flow, it only
// costs precision.
package framework

import "go/ast"

// Block is one basic block: statements that execute in sequence, then a
// transfer to one of Succs.
type Block struct {
	Index int
	Stmts []ast.Stmt
	Succs []*Block
}

// CFG is one function body's control-flow graph. Blocks[0] is the entry;
// the exit is implicit (a block with no successors returns).
type CFG struct {
	Blocks []*Block
}

// cfgBuilder carries the loop/label context during construction.
type cfgBuilder struct {
	g      *CFG
	breaks []*Block // innermost-last break targets (loops and switches)
	conts  []*Block // innermost-last continue targets (loops only)
}

// NewCFG builds the control-flow graph of one function body. A nil body
// (declaration without definition) yields a single empty block.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{g: &CFG{}}
	entry := b.newBlock()
	if body != nil {
		b.stmts(entry, body.List)
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func link(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// stmts threads the statement list through cur and returns the block control
// falls out of, or nil if the list always transfers away (return/branch).
func (b *cfgBuilder) stmts(cur *Block, list []ast.Stmt) *Block {
	for _, s := range list {
		if cur == nil {
			// Unreachable code after a terminator still gets a block so its
			// expressions are visited by block-order walks.
			cur = b.newBlock()
		}
		cur = b.stmt(cur, s)
	}
	return cur
}

// stmt adds one statement and returns the fallthrough block (nil when the
// statement always transfers control away).
func (b *cfgBuilder) stmt(cur *Block, s ast.Stmt) *Block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(cur, s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			cur.Stmts = append(cur.Stmts, s.Init)
		}
		cur.Stmts = append(cur.Stmts, &ast.ExprStmt{X: s.Cond})
		thenB := b.newBlock()
		link(cur, thenB)
		thenOut := b.stmts(thenB, s.Body.List)
		join := b.newBlock()
		link(thenOut, join)
		if s.Else != nil {
			elseB := b.newBlock()
			link(cur, elseB)
			link(b.stmt(elseB, s.Else), join)
		} else {
			link(cur, join)
		}
		return join

	case *ast.ForStmt:
		if s.Init != nil {
			cur.Stmts = append(cur.Stmts, s.Init)
		}
		head := b.newBlock()
		link(cur, head)
		if s.Cond != nil {
			head.Stmts = append(head.Stmts, &ast.ExprStmt{X: s.Cond})
		}
		exit := b.newBlock()
		link(head, exit)
		post := b.newBlock()
		if s.Post != nil {
			post.Stmts = append(post.Stmts, s.Post)
		}
		link(post, head)
		b.breaks = append(b.breaks, exit)
		b.conts = append(b.conts, post)
		body := b.newBlock()
		link(head, body)
		link(b.stmts(body, s.Body.List), post)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.conts = b.conts[:len(b.conts)-1]
		return exit

	case *ast.RangeStmt:
		head := b.newBlock()
		link(cur, head)
		head.Stmts = append(head.Stmts, s) // the range clause itself (key/value binding)
		exit := b.newBlock()
		link(head, exit)
		b.breaks = append(b.breaks, exit)
		b.conts = append(b.conts, head)
		body := b.newBlock()
		link(head, body)
		link(b.stmts(body, s.Body.List), head)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.conts = b.conts[:len(b.conts)-1]
		return exit

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return b.multiway(cur, s)

	case *ast.ReturnStmt, *ast.DeferStmt:
		cur.Stmts = append(cur.Stmts, s)
		if _, ok := s.(*ast.ReturnStmt); ok {
			return nil
		}
		return cur

	case *ast.BranchStmt:
		cur.Stmts = append(cur.Stmts, s)
		// Labels are approximated by the innermost target: precise enough
		// for dataflow ordering, conservative for reachability.
		switch s.Tok.String() {
		case "break":
			if n := len(b.breaks); n > 0 {
				link(cur, b.breaks[n-1])
			}
		case "continue":
			if n := len(b.conts); n > 0 {
				link(cur, b.conts[n-1])
			}
		}
		return nil

	case *ast.LabeledStmt:
		head := b.newBlock()
		link(cur, head)
		return b.stmt(head, s.Stmt)

	default:
		cur.Stmts = append(cur.Stmts, s)
		return cur
	}
}

// multiway builds switch/type-switch/select: one block per clause, all
// joining at a common exit.
func (b *cfgBuilder) multiway(cur *Block, s ast.Stmt) *Block {
	var clauses []ast.Stmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			cur.Stmts = append(cur.Stmts, s.Init)
		}
		if s.Tag != nil {
			cur.Stmts = append(cur.Stmts, &ast.ExprStmt{X: s.Tag})
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur.Stmts = append(cur.Stmts, s.Init)
		}
		cur.Stmts = append(cur.Stmts, s.Assign)
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}
	exit := b.newBlock()
	b.breaks = append(b.breaks, exit)
	var prevBody *Block // fallthrough chain
	for _, c := range clauses {
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				cur.Stmts = append(cur.Stmts, &ast.ExprStmt{X: e})
			}
			hasDefault = hasDefault || c.List == nil
			body = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				cur.Stmts = append(cur.Stmts, c.Comm)
			}
			hasDefault = hasDefault || c.Comm == nil
			body = c.Body
		}
		blk := b.newBlock()
		link(cur, blk)
		link(prevBody, blk) // a trailing fallthrough lands here
		out := b.stmts(blk, body)
		if out != nil && endsInFallthrough(body) {
			prevBody = out
			continue
		}
		prevBody = nil
		link(out, exit)
	}
	link(prevBody, exit)
	b.breaks = b.breaks[:len(b.breaks)-1]
	if !hasDefault {
		link(cur, exit) // no clause may match
	}
	return exit
}

func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok.String() == "fallthrough"
}

// ReversePostorder returns the blocks in reverse postorder from the entry —
// the canonical iteration order for a forward dataflow fixpoint.
func (g *CFG) ReversePostorder() []*Block {
	if len(g.Blocks) == 0 {
		return nil
	}
	seen := make([]bool, len(g.Blocks))
	var post []*Block
	var walk func(b *Block)
	walk = func(b *Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				walk(s)
			}
		}
		post = append(post, b)
	}
	walk(g.Blocks[0])
	// Blocks unreachable from the entry (e.g. code after a terminator) are
	// appended after the reachable ones so their statements still flow.
	for _, b := range g.Blocks {
		if !seen[b.Index] {
			post = append(post, b)
		}
	}
	out := make([]*Block, len(post))
	for i, b := range post {
		out[len(post)-1-i] = b
	}
	return out
}
