package framework

import (
	"go/ast"
	"go/types"

	"obfusmem/internal/analysis/annot"
)

// FuncKey names a function for the Facts store: "Name" or "Recv.Name" with
// pointer receivers stripped. Summaries are keyed by (package path, FuncKey)
// strings rather than *types.Func identity because the same function is a
// different object when seen from source and from export data.
func FuncKey(fn *types.Func) string { return annot.FuncKey(fn) }

// annotDeclKey is FuncKey computed syntactically from a declaration.
func annotDeclKey(decl *ast.FuncDecl) string { return annot.DeclKey(decl) }
