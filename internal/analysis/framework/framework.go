// Package framework is a small, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis driver model on top of the standard
// library's go/ast, go/types, and go/importer.
//
// The repository's invariants — bit-identical output for any seed or worker
// count, zero-allocation hot legs, exact latency attribution — are enforced
// at runtime by tests; the obfuslint analyzers built on this framework turn
// them into compile-time properties. The framework exists because the
// toolchain image intentionally carries no module dependencies: analyzers
// receive the same (Fset, Files, Pkg, TypesInfo) quadruple a go/analysis
// Pass would provide, and the cmd/obfuslint driver plays the multichecker.
//
// Suppression is uniform across analyzers: a `//lint:allow <analyzer>
// <reason>` comment on the flagged line (or the line directly above it)
// drops the diagnostic. Suppression filtering happens here, in the driver
// layer, so individual analyzers report unconditionally and stay simple.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"obfusmem/internal/analysis/annot"
)

// Analyzer is one named static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lint:allow <name> <reason>` suppressions.
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer
	// machine-checks.
	Doc string
	// Run reports diagnostics for one package via pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Annot holds the parsed //obfus:* and //lint:allow directives of this
	// package's files.
	Annot *annot.Directives
	// Module resolves //obfus:* annotations on functions in other packages
	// of this module (nil outside a module-aware driver run, e.g. in
	// single-package golden tests that do not need cross-package facts).
	Module *annot.ModuleIndex

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// Package is one loaded, type-checked package (see Load).
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	Annot      *annot.Directives
}

// Run applies the analyzers to the packages and returns the surviving
// (unsuppressed) diagnostics in deterministic (file, line, column, analyzer)
// order. module may be nil when cross-package annotation lookup is not
// needed.
func Run(pkgs []*Package, analyzers []*Analyzer, module *annot.ModuleIndex) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.Info,
				Annot:     pkg.Annot,
				Module:    module,
			}
			pass.report = func(d Diagnostic) {
				d.Analyzer = a.Name
				if pkg.Annot.Allowed(a.Name, pkg.Fset, d.Pos) {
					return
				}
				out = append(out, d)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.ImportPath, a.Name, err)
			}
		}
	}
	fset := (*token.FileSet)(nil)
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	}
	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
