// Package framework is a small, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis driver model on top of the standard
// library's go/ast, go/types, and go/importer.
//
// The repository's invariants — bit-identical output for any seed or worker
// count, zero-allocation hot legs, exact latency attribution — are enforced
// at runtime by tests; the obfuslint analyzers built on this framework turn
// them into compile-time properties. The framework exists because the
// toolchain image intentionally carries no module dependencies: analyzers
// receive the same (Fset, Files, Pkg, TypesInfo) quadruple a go/analysis
// Pass would provide, and the cmd/obfuslint driver plays the multichecker.
//
// Suppression is uniform across analyzers: a `//lint:allow <analyzer>
// <reason>` comment on the flagged line (or the line directly above it)
// drops the diagnostic. Suppression filtering happens here, in the driver
// layer, so individual analyzers report unconditionally and stay simple.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"obfusmem/internal/analysis/annot"
)

// Analyzer is one named static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lint:allow <name> <reason>` suppressions.
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer
	// machine-checks.
	Doc string
	// Run reports diagnostics for one package via pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Annot holds the parsed //obfus:* and //lint:allow directives of this
	// package's files.
	Annot *annot.Directives
	// Module resolves //obfus:* annotations on functions in other packages
	// of this module (nil outside a module-aware driver run, e.g. in
	// single-package golden tests that do not need cross-package facts).
	Module *annot.ModuleIndex
	// Facts is the run-wide fact store: interprocedural passes export one
	// summary per analyzed function and import their callees' summaries
	// from earlier (dependency-ordered) packages of the same Run.
	Facts *Facts

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos under the analyzer's default rule.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ReportRulef records a diagnostic at pos under a named sub-rule of the
// analyzer (the machine-readable rule slug in -json output).
func (p *Pass) ReportRulef(pos token.Pos, rule, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Rule: rule, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	// Rule is the analyzer sub-rule slug; defaults to the analyzer name.
	Rule    string
	Pos     token.Pos
	Message string
}

// Facts is a run-wide store of per-function facts, keyed by (analyzer,
// package import path, function key). Packages are analyzed in dependency
// order, so by the time a caller's package runs, every module-internal
// callee's facts are already exported.
type Facts struct {
	m map[factKey]any
}

type factKey struct{ analyzer, pkg, fn string }

// NewFacts returns an empty store.
func NewFacts() *Facts { return &Facts{m: make(map[factKey]any)} }

// Export records a fact for a function of the pass's package.
func (f *Facts) Export(analyzer, pkg, fn string, v any) {
	f.m[factKey{analyzer, pkg, fn}] = v
}

// Import returns the fact exported for the named function, or nil.
func (f *Facts) Import(analyzer, pkg, fn string) any {
	if f == nil {
		return nil
	}
	return f.m[factKey{analyzer, pkg, fn}]
}

// Package is one loaded, type-checked package (see Load).
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	Annot      *annot.Directives
}

// Run applies the analyzers to the packages and returns the surviving
// (unsuppressed) diagnostics in deterministic (file, line, column, analyzer)
// order. module may be nil when cross-package annotation lookup is not
// needed.
func Run(pkgs []*Package, analyzers []*Analyzer, module *annot.ModuleIndex) ([]Diagnostic, error) {
	var out []Diagnostic
	facts := NewFacts()
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.Info,
				Annot:     pkg.Annot,
				Module:    module,
				Facts:     facts,
			}
			pass.report = func(d Diagnostic) {
				d.Analyzer = a.Name
				if d.Rule == "" {
					d.Rule = a.Name
				}
				if pkg.Annot.Allowed(a.Name, pkg.Fset, d.Pos) {
					return
				}
				out = append(out, d)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.ImportPath, a.Name, err)
			}
		}
	}
	fset := (*token.FileSet)(nil)
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	}
	sortDiagnostics(fset, out)
	return out, nil
}

// SortDiagnostics orders findings by (file, line, column, analyzer). Drivers
// that merge Run output with Hygiene output use it to restore the canonical
// order before printing.
func SortDiagnostics(fset *token.FileSet, out []Diagnostic) {
	sortDiagnostics(fset, out)
}

// sortDiagnostics orders findings by (file, line, column, analyzer).
func sortDiagnostics(fset *token.FileSet, out []Diagnostic) {
	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
}

// Hygiene audits the packages' directives against the registered suite and
// returns the suppression-hygiene findings: malformed directives, and
// //lint:allow comments that either name an analyzer outside the suite or no
// longer suppress anything. It must run after Run over the SAME packages with
// the FULL suite — Run's suppression matching is what marks a site as having
// earned its keep, so calling Hygiene after a partial run would flag
// load-bearing suppressions as stale.
func Hygiene(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	registered := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		registered[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, m := range pkg.Annot.MalformedDirectives() {
			out = append(out, Diagnostic{
				Analyzer: "annotation", Rule: "malformed-directive", Pos: m.Pos,
				Message: fmt.Sprintf("malformed directive %q (want //lint:allow <analyzer> <reason>, //obfus:public <reason>, or //obfus:<directive>)", m.Text),
			})
		}
		for _, s := range pkg.Annot.AllowSites() {
			switch {
			case !registered[s.Analyzer]:
				out = append(out, Diagnostic{
					Analyzer: "annotation", Rule: "unknown-rule-suppression", Pos: s.Pos,
					Message: fmt.Sprintf("//lint:allow names %q, which is not a registered analyzer; a suppression must name a rule in the suite", s.Analyzer),
				})
			case !s.Used:
				out = append(out, Diagnostic{
					Analyzer: "annotation", Rule: "stale-suppression", Pos: s.Pos,
					Message: fmt.Sprintf("stale //lint:allow: the %s analyzer reports nothing here any more; delete the suppression", s.Analyzer),
				})
			}
		}
	}
	fset := (*token.FileSet)(nil)
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	}
	sortDiagnostics(fset, out)
	return out
}
