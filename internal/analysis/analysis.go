// Package analysis assembles the obfuslint suite: the static-analysis
// passes that machine-check the simulator's invariants (see each pass's
// package documentation, and the "Machine-checked invariants" section of
// DESIGN.md). The cmd/obfuslint driver and the repository-cleanliness
// integration test both consume the suite through All, so a new pass is
// wired into both by adding it here.
package analysis

import (
	"obfusmem/internal/analysis/framework"
	"obfusmem/internal/analysis/passes/determinism"
	"obfusmem/internal/analysis/passes/eventref"
	"obfusmem/internal/analysis/passes/hotpath"
	"obfusmem/internal/analysis/passes/metricnames"
	"obfusmem/internal/analysis/passes/secretflow"
	"obfusmem/internal/analysis/passes/shardown"
	"obfusmem/internal/analysis/passes/wireonly"
)

// All returns the full obfuslint suite in reporting order.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		determinism.Analyzer,
		eventref.Analyzer,
		hotpath.Analyzer,
		metricnames.Analyzer,
		secretflow.Analyzer,
		shardown.Analyzer,
		wireonly.Analyzer,
	}
}
