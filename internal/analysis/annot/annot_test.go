package annot

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"testing"
)

// parseSrc runs Parse over one in-memory file.
func parseSrc(t *testing.T, src string) (*token.FileSet, *ast.File, *Directives) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f, Parse(fset, []*ast.File{f})
}

// funcDecl finds the named function declaration.
func funcDecl(t *testing.T, f *ast.File, name string) *ast.FuncDecl {
	t.Helper()
	for _, decl := range f.Decls {
		if fn, ok := decl.(*ast.FuncDecl); ok && fn.Name.Name == name {
			return fn
		}
	}
	t.Fatalf("no function %q", name)
	return nil
}

func TestFuncDirectivesAndArgs(t *testing.T) {
	_, f, d := parseSrc(t, `package p

// Read does a thing.
//
//obfus:secret addr data
func Read(addr, data uint64) {}

//obfus:secret
func Truth() uint64 { return 0 }

//obfus:public ciphertext is pad-XORed
func Seal(x uint64) uint64 { return x }
`)
	read := funcDecl(t, f, "Read")
	if !d.FuncHas(read, Secret) {
		t.Error("Read should carry //obfus:secret")
	}
	args, ok := d.FuncArgs(read, Secret)
	if !ok || len(args) != 2 || args[0] != "addr" || args[1] != "data" {
		t.Errorf("Read secret args = %v, %v; want [addr data]", args, ok)
	}
	truth := funcDecl(t, f, "Truth")
	if args, ok := d.FuncArgs(truth, Secret); !ok || len(args) != 0 {
		t.Errorf("bare //obfus:secret should parse with no args, got %v, %v", args, ok)
	}
	if !d.FuncHas(funcDecl(t, f, "Seal"), Public) {
		t.Error("Seal should carry //obfus:public")
	}
	if len(d.MalformedDirectives()) != 0 {
		t.Errorf("unexpected malformed directives: %v", d.MalformedDirectives())
	}
}

func TestTypeAndFieldDirectives(t *testing.T) {
	_, _, d := parseSrc(t, `package p

//obfus:owned
type lane struct {
	//obfus:secret
	addr uint64
	data uint64 //obfus:secret
	pub  uint64
}

type plain struct{ x int }
`)
	if !d.TypeHas("lane", Owned) {
		t.Error("lane should be //obfus:owned")
	}
	if d.TypeHas("plain", Owned) {
		t.Error("plain must not be owned")
	}
	if !d.FieldHas("lane", "addr", Secret) {
		t.Error("lane.addr doc-comment directive missed")
	}
	if !d.FieldHas("lane", "data", Secret) {
		t.Error("lane.data line-comment directive missed")
	}
	if d.FieldHas("lane", "pub", Secret) {
		t.Error("lane.pub must not be secret")
	}
}

// TestMalformedDirectives covers every way a directive can rot: an empty
// //obfus:, a reasonless declassifier, and a reasonless suppression.
func TestMalformedDirectives(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty obfus", `package p

//obfus:
func f() {}
`},
		{"reasonless public", `package p

//obfus:public
func f() int { return 0 }
`},
		{"reasonless allow", `package p

func f() int {
	//lint:allow determinism
	return 0
}
`},
		{"allow with nothing", `package p

//lint:allow
func f() {}
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, d := parseSrc(t, tc.src)
			if len(d.MalformedDirectives()) != 1 {
				t.Errorf("want exactly 1 malformed directive, got %v", d.MalformedDirectives())
			}
		})
	}
}

// TestDuplicateDirectiveOneDecl requires the same directive repeated on one
// declaration to be malformed — two //obfus:secret lines with different
// parameter lists would silently shadow each other otherwise.
func TestDuplicateDirectiveOneDecl(t *testing.T) {
	_, f, d := parseSrc(t, `package p

//obfus:secret addr
//obfus:secret data
func f(addr, data uint64) {}
`)
	if got := len(d.MalformedDirectives()); got != 1 {
		t.Fatalf("want 1 malformed (duplicate) directive, got %d: %v", got, d.MalformedDirectives())
	}
	// The first spelling must still be in force: malformed flags the rot
	// without deactivating the annotation.
	if !d.FuncHas(funcDecl(t, f, "f"), Secret) {
		t.Error("duplicate directive should not erase the original annotation")
	}
}

func TestAllowSitesUsedAndOrder(t *testing.T) {
	fset, f, d := parseSrc(t, `package p

func g() int {
	//lint:allow hotpath second site, later line
	return 1
}

func f() int {
	//lint:allow determinism first by position? no — g is above
	return 0
}
`)
	sites := d.AllowSites()
	if len(sites) != 2 {
		t.Fatalf("want 2 allow sites, got %d", len(sites))
	}
	if sites[0].Pos >= sites[1].Pos {
		t.Error("AllowSites not in positional order")
	}
	// Allowed on the suppressed line marks the site used; the other stays
	// stale.
	ret := funcDecl(t, f, "g").Body.List[0].Pos()
	if !d.Allowed("hotpath", fset, ret) {
		t.Error("suppression on preceding line should match the finding")
	}
	if d.Allowed("determinism", fset, ret) {
		t.Error("wrong-analyzer suppression must not match")
	}
	var used, stale int
	for _, s := range sites {
		if s.Used {
			used++
		} else {
			stale++
		}
	}
	if used != 1 || stale != 1 {
		t.Errorf("want 1 used + 1 stale site, got used=%d stale=%d", used, stale)
	}
}

// writePkg lays out a single-package directory and returns its file list.
func writePkg(t *testing.T, root, dir, src string) []string {
	t.Helper()
	abs := filepath.Join(root, dir)
	if err := os.MkdirAll(abs, 0o755); err != nil {
		t.Fatal(err)
	}
	file := filepath.Join(abs, "a.go")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return []string{file}
}

// TestModuleIndexCrossPackageIsolation seeds two packages that both declare
// Access (one annotated, one not) plus same-named types and fields, and
// requires lookups to stay package-scoped: an //obfus:* index must never
// bleed a directive from one import path onto a same-keyed symbol in
// another.
func TestModuleIndexCrossPackageIsolation(t *testing.T) {
	root := t.TempDir()
	aFiles := writePkg(t, root, "a", `package a

//obfus:secret addr
func Access(addr uint64) {}

//obfus:owned
type Lane struct {
	cipher uint64 //obfus:secret
}
`)
	bFiles := writePkg(t, root, "b", `package b

func Access(addr uint64) {}

type Lane struct {
	cipher uint64
}
`)
	idx := NewModuleIndex(map[string][]string{
		"m/a": aFiles,
		"m/b": bFiles,
	})

	pkgA := types.NewPackage("m/a", "a")
	pkgB := types.NewPackage("m/b", "b")
	sig := types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, nil, "addr", types.Typ[types.Uint64])), nil, false)
	accessA := types.NewFunc(token.NoPos, pkgA, "Access", sig)
	accessB := types.NewFunc(token.NoPos, pkgB, "Access", sig)

	if !idx.FuncHas(accessA, Secret) {
		t.Error("a.Access should be indexed //obfus:secret")
	}
	if idx.FuncHas(accessB, Secret) {
		t.Error("b.Access must NOT inherit a.Access's directive (cross-package collision)")
	}
	if args, ok := idx.FuncArgs(accessA, Secret); !ok || len(args) != 1 || args[0] != "addr" {
		t.Errorf("a.Access secret args = %v, %v; want [addr]", args, ok)
	}

	laneA := types.NewTypeName(token.NoPos, pkgA, "Lane", nil)
	types.NewNamed(laneA, types.NewStruct(nil, nil), nil)
	laneB := types.NewTypeName(token.NoPos, pkgB, "Lane", nil)
	types.NewNamed(laneB, types.NewStruct(nil, nil), nil)
	if !idx.TypeHas(laneA, Owned) {
		t.Error("a.Lane should be indexed //obfus:owned")
	}
	if idx.TypeHas(laneB, Owned) {
		t.Error("b.Lane must NOT inherit a.Lane's directive")
	}
	if !idx.FieldHas(pkgA, "Lane", "cipher", Secret) {
		t.Error("a.Lane.cipher should be indexed //obfus:secret")
	}
	if idx.FieldHas(pkgB, "Lane", "cipher", Secret) {
		t.Error("b.Lane.cipher must NOT inherit a.Lane.cipher's directive")
	}

	// Unknown packages and nil funcs answer false, never panic.
	pkgC := types.NewPackage("m/c", "c")
	if idx.FieldHas(pkgC, "Lane", "cipher", Secret) {
		t.Error("unindexed package must report false")
	}
	if idx.FuncHas(nil, Secret) {
		t.Error("nil func must report false")
	}
	var nilIdx *ModuleIndex
	if nilIdx.FuncHas(accessA, Secret) {
		t.Error("nil index must report false")
	}
}

// TestModuleIndexMethodKeys checks receiver-qualified keys: Lane.Access and
// a pointer receiver resolve to the same "Recv.Name" key.
func TestModuleIndexMethodKeys(t *testing.T) {
	root := t.TempDir()
	files := writePkg(t, root, "a", `package a

type Lane struct{}

//obfus:hotpath
func (l *Lane) Access(addr uint64) {}
`)
	idx := NewModuleIndex(map[string][]string{"m/a": files})
	pkg := types.NewPackage("m/a", "a")
	laneObj := types.NewTypeName(token.NoPos, pkg, "Lane", nil)
	named := types.NewNamed(laneObj, types.NewStruct(nil, nil), nil)
	recv := types.NewVar(token.NoPos, pkg, "l", types.NewPointer(named))
	sig := types.NewSignatureType(recv, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, nil, "addr", types.Typ[types.Uint64])), nil, false)
	access := types.NewFunc(token.NoPos, pkg, "Access", sig)
	if !idx.FuncHas(access, Hotpath) {
		t.Error("pointer-receiver method key should resolve to Lane.Access")
	}
	if FuncKey(access) != "Lane.Access" {
		t.Errorf("FuncKey = %q, want Lane.Access", FuncKey(access))
	}
}
