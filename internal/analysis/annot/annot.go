// Package annot parses the source annotations shared by every obfuslint
// analyzer:
//
//	//obfus:hotpath      function is a zero-alloc hot leg (hotpath analyzer)
//	//obfus:wallclock    function legitimately reads the wall clock
//	//obfus:scoring      function may read attack ground truth (wireonly analyzer)
//	//obfus:secret [params...]         function results (bare) or the named
//	                                   parameters carry secrets (secretflow)
//	//obfus:public <reason>            declassifier: results are safe for the
//	                                   wire, with a mandatory reason
//	//obfus:owned        type is lane-owned state (shardown analyzer)
//	//lint:allow <analyzer> <reason>   suppress one finding, with a reason
//
// Function directives live in the declaration's doc comment and classify the
// whole function; //obfus:secret also attaches to struct fields (doc or line
// comment) and //obfus:owned to type declarations. //lint:allow is
// positional: written on (or on the line directly above) the flagged line,
// it suppresses that analyzer's diagnostics for that line only. A reason is
// mandatory — a suppression without an explanation is itself reported by the
// driver, as is a declassifier without one, or the same directive repeated
// on one declaration.
package annot

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"sync"
)

// Directive name constants.
const (
	Hotpath   = "hotpath"
	Wallclock = "wallclock"
	Scoring   = "scoring"
	Secret    = "secret"
	Public    = "public"
	Owned     = "owned"
)

const (
	obfusPrefix = "//obfus:"
	allowPrefix = "//lint:allow"
)

// AllowSite is one parsed //lint:allow comment. The driver marks a site Used
// when it suppresses a finding; sites still unused after a full run are
// stale and reported by the hygiene check.
type AllowSite struct {
	Analyzer string
	Pos      token.Pos
	line     int // suppresses findings on this line and the next
	Used     bool
}

// Malformed is a directive that failed to parse (missing analyzer name or
// reason, a reasonless declassifier, or a duplicated directive). The driver
// surfaces these as findings so suppressions cannot silently rot.
type Malformed struct {
	Pos  token.Pos
	Text string
}

// Directives is the parsed annotation set of one package.
type Directives struct {
	funcs     map[*ast.FuncDecl]map[string][]string // decl -> directive -> args
	types     map[string]map[string]bool            // type name -> directive set
	fields    map[string]bool                       // "Type.Field\x00directive"
	allowsByF map[string][]*AllowSite               // filename -> sites
	malformed []Malformed
}

// Parse extracts the directives from the package's files.
func Parse(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{
		funcs:     make(map[*ast.FuncDecl]map[string][]string),
		types:     make(map[string]map[string]bool),
		fields:    make(map[string]bool),
		allowsByF: make(map[string][]*AllowSite),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d.parseAllow(fset, c)
			}
		}
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				d.parseFuncDecl(decl)
			case *ast.GenDecl:
				d.parseGenDecl(decl)
			}
		}
	}
	return d
}

func (d *Directives) parseFuncDecl(fn *ast.FuncDecl) {
	if fn.Doc == nil {
		return
	}
	for _, c := range fn.Doc.List {
		name, args, ok := d.splitObfus(c)
		if !ok {
			continue
		}
		set := d.funcs[fn]
		if set == nil {
			set = make(map[string][]string)
			d.funcs[fn] = set
		}
		if _, dup := set[name]; dup {
			d.malformed = append(d.malformed, Malformed{c.Pos(), c.Text + " (duplicate directive on one declaration)"})
			continue
		}
		set[name] = args
	}
}

// parseGenDecl collects type-level directives (//obfus:owned on a type
// declaration) and field-level ones (//obfus:secret on a struct field's doc
// or line comment).
func (d *Directives) parseGenDecl(gd *ast.GenDecl) {
	if gd.Tok != token.TYPE {
		return
	}
	for _, spec := range gd.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		// A single-spec `type Foo ...` attaches the doc to the GenDecl.
		docs := []*ast.CommentGroup{ts.Doc}
		if len(gd.Specs) == 1 {
			docs = append(docs, gd.Doc)
		}
		for _, doc := range docs {
			if doc == nil {
				continue
			}
			for _, c := range doc.List {
				if name, _, ok := d.splitObfus(c); ok {
					set := d.types[ts.Name.Name]
					if set == nil {
						set = make(map[string]bool)
						d.types[ts.Name.Name] = set
					}
					if set[name] {
						d.malformed = append(d.malformed, Malformed{c.Pos(), c.Text + " (duplicate directive on one declaration)"})
						continue
					}
					set[name] = true
				}
			}
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok || st.Fields == nil {
			continue
		}
		for _, field := range st.Fields.List {
			for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
				if cg == nil {
					continue
				}
				for _, c := range cg.List {
					name, _, ok := d.splitObfus(c)
					if !ok {
						continue
					}
					for _, fname := range field.Names {
						key := ts.Name.Name + "." + fname.Name + "\x00" + name
						if d.fields[key] {
							d.malformed = append(d.malformed, Malformed{c.Pos(), c.Text + " (duplicate directive on one declaration)"})
							continue
						}
						d.fields[key] = true
					}
				}
			}
		}
	}
}

// splitObfus parses one //obfus:<name> [args...] comment, recording
// malformed shapes (empty name, reasonless declassifier) as it goes.
func (d *Directives) splitObfus(c *ast.Comment) (name string, args []string, ok bool) {
	rest, found := strings.CutPrefix(c.Text, obfusPrefix)
	if !found {
		return "", nil, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		d.malformed = append(d.malformed, Malformed{c.Pos(), c.Text})
		return "", nil, false
	}
	if fields[0] == Public && len(fields) < 2 {
		// A declassifier is an auditable security decision; the reason is
		// not optional.
		d.malformed = append(d.malformed, Malformed{c.Pos(), c.Text + " (declassifier needs a reason)"})
		return "", nil, false
	}
	return fields[0], fields[1:], true
}

func (d *Directives) parseAllow(fset *token.FileSet, c *ast.Comment) {
	rest, ok := strings.CutPrefix(c.Text, allowPrefix)
	if !ok {
		return
	}
	fields := strings.Fields(rest)
	// An analyzer name plus at least one word of reason is mandatory.
	if len(fields) < 2 {
		d.malformed = append(d.malformed, Malformed{c.Pos(), c.Text})
		return
	}
	pos := fset.Position(c.Pos())
	d.allowsByF[pos.Filename] = append(d.allowsByF[pos.Filename], &AllowSite{
		Analyzer: fields[0],
		Pos:      c.Pos(),
		line:     pos.Line,
	})
}

// FuncHas reports whether fn's doc comment carries //obfus:<name>.
func (d *Directives) FuncHas(fn *ast.FuncDecl, name string) bool {
	_, ok := d.funcs[fn][name]
	return ok
}

// FuncArgs returns the arguments of //obfus:<name> on fn's doc comment and
// whether the directive is present at all (present with no arguments yields
// ok with a nil slice — e.g. a bare //obfus:secret marking all results).
func (d *Directives) FuncArgs(fn *ast.FuncDecl, name string) (args []string, ok bool) {
	args, ok = d.funcs[fn][name]
	return args, ok
}

// TypeHas reports whether the named type's declaration carries
// //obfus:<directive>.
func (d *Directives) TypeHas(typeName, directive string) bool {
	return d.types[typeName][directive]
}

// FieldHas reports whether the struct field Type.Field carries
// //obfus:<directive> on its doc or line comment.
func (d *Directives) FieldHas(typeName, fieldName, directive string) bool {
	return d.fields[typeName+"."+fieldName+"\x00"+directive]
}

// Allowed reports whether a finding of the named analyzer at pos is
// suppressed by a //lint:allow comment on the same or the preceding line,
// marking the matching site as having earned its keep.
func (d *Directives) Allowed(analyzer string, fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	for _, a := range d.allowsByF[p.Filename] {
		if a.Analyzer == analyzer && (a.line == p.Line || a.line == p.Line-1) {
			a.Used = true
			return true
		}
	}
	return false
}

// AllowSites returns every //lint:allow site of the package in positional
// order, with Used reflecting the suppressions exercised so far.
func (d *Directives) AllowSites() []*AllowSite {
	var out []*AllowSite
	for _, sites := range d.allowsByF {
		out = append(out, sites...)
	}
	// Token positions within one FileSet order files by registration, which
	// is deterministic for a deterministic loader.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Pos < out[j-1].Pos; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Malformed returns the unparsable directives found in the package.
func (d *Directives) MalformedDirectives() []Malformed { return d.malformed }

// ModuleIndex answers cross-package annotation queries ("is the callee in
// that other package marked //obfus:hotpath?") by lazily parsing the other
// package's sources. Construction is cheap; packages parse on first query
// and are cached. Safe for concurrent use.
type ModuleIndex struct {
	mu   sync.Mutex
	dirs map[string][]string          // import path -> absolute Go file paths
	fns  map[string]map[string]string // import path -> "key\x00directive" -> marker + joined args
}

// indexed marks a present directive in the cross-package index; arguments,
// when any, follow space-separated.
const indexed = "\x01"

// NewModuleIndex builds an index over import path -> source files.
func NewModuleIndex(files map[string][]string) *ModuleIndex {
	return &ModuleIndex{dirs: files, fns: make(map[string]map[string]string)}
}

func (m *ModuleIndex) lookup(pkg *types.Package, key string) (string, bool) {
	if m == nil || pkg == nil {
		return "", false
	}
	path := pkg.Path()
	m.mu.Lock()
	defer m.mu.Unlock()
	set, ok := m.fns[path]
	if !ok {
		set = m.parseLocked(path)
		m.fns[path] = set
	}
	v, ok := set[key]
	return v, ok
}

// FuncHas reports whether fn (a function or method in an indexed package)
// carries //obfus:<directive> on its declaration. Unknown packages and
// functions report false.
func (m *ModuleIndex) FuncHas(fn *types.Func, directive string) bool {
	if fn == nil {
		return false
	}
	_, ok := m.lookup(fn.Pkg(), FuncKey(fn)+"\x00"+directive)
	return ok
}

// FuncArgs returns the arguments of //obfus:<directive> on fn's declaration
// and whether the directive is present.
func (m *ModuleIndex) FuncArgs(fn *types.Func, directive string) (args []string, ok bool) {
	if fn == nil {
		return nil, false
	}
	v, ok := m.lookup(fn.Pkg(), FuncKey(fn)+"\x00"+directive)
	if !ok {
		return nil, false
	}
	if rest := strings.TrimPrefix(v, indexed); rest != "" {
		args = strings.Fields(rest)
	}
	return args, true
}

// TypeHas reports whether the named type's declaration in its home package
// carries //obfus:<directive>.
func (m *ModuleIndex) TypeHas(obj *types.TypeName, directive string) bool {
	if obj == nil {
		return false
	}
	_, ok := m.lookup(obj.Pkg(), "type "+obj.Name()+"\x00"+directive)
	return ok
}

// FieldHas reports whether the struct field Type.Field in pkg carries
// //obfus:<directive>.
func (m *ModuleIndex) FieldHas(pkg *types.Package, typeName, fieldName, directive string) bool {
	_, ok := m.lookup(pkg, "field "+typeName+"."+fieldName+"\x00"+directive)
	return ok
}

// FuncKey names a function "Name" or "Recv.Name" with pointer receivers
// stripped, matching DeclKey below. It is also the key interprocedural
// passes use for their per-function facts.
func FuncKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// DeclKey is FuncKey computed syntactically from a declaration.
func DeclKey(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name + "." + fn.Name.Name
	case *ast.IndexExpr: // generic receiver
		if id, ok := t.X.(*ast.Ident); ok {
			return id.Name + "." + fn.Name.Name
		}
	}
	return fn.Name.Name
}

func (m *ModuleIndex) parseLocked(path string) map[string]string {
	set := make(map[string]string)
	add := func(key string, c *ast.Comment) {
		rest, ok := strings.CutPrefix(c.Text, obfusPrefix)
		if !ok {
			return
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			return // malformed; reported when that package is analyzed
		}
		set[key+"\x00"+fields[0]] = indexed + strings.Join(fields[1:], " ")
	}
	fset := token.NewFileSet()
	for _, file := range m.dirs[path] {
		f, err := parser.ParseFile(fset, file, nil, parser.ParseComments)
		if err != nil {
			continue
		}
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				if decl.Doc == nil {
					continue
				}
				for _, c := range decl.Doc.List {
					add(DeclKey(decl), c)
				}
			case *ast.GenDecl:
				if decl.Tok != token.TYPE {
					continue
				}
				for _, spec := range decl.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					docs := []*ast.CommentGroup{ts.Doc}
					if len(decl.Specs) == 1 {
						docs = append(docs, decl.Doc)
					}
					for _, doc := range docs {
						if doc == nil {
							continue
						}
						for _, c := range doc.List {
							add("type "+ts.Name.Name, c)
						}
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok || st.Fields == nil {
						continue
					}
					for _, field := range st.Fields.List {
						for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
							if cg == nil {
								continue
							}
							for _, c := range cg.List {
								for _, fname := range field.Names {
									add("field "+ts.Name.Name+"."+fname.Name, c)
								}
							}
						}
					}
				}
			}
		}
	}
	return set
}
