// Package annot parses the source annotations shared by every obfuslint
// analyzer:
//
//	//obfus:hotpath      function is a zero-alloc hot leg (hotpath analyzer)
//	//obfus:wallclock    function legitimately reads the wall clock
//	//obfus:scoring      function may read attack ground truth (wireonly analyzer)
//	//lint:allow <analyzer> <reason>   suppress one finding, with a reason
//
// The //obfus:* directives live in a function's doc comment and classify the
// whole function. //lint:allow is positional: written on (or on the line
// directly above) the flagged line, it suppresses that analyzer's
// diagnostics for that line only. A reason is mandatory — a suppression
// without an explanation is itself reported by the driver.
package annot

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"sync"
)

// Directive name constants.
const (
	Hotpath   = "hotpath"
	Wallclock = "wallclock"
	Scoring   = "scoring"
)

const (
	obfusPrefix = "//obfus:"
	allowPrefix = "//lint:allow"
)

// allowSite is one parsed //lint:allow comment.
type allowSite struct {
	analyzer string
	line     int // suppresses findings on this line and the next
}

// Malformed is a directive that failed to parse (missing analyzer name or
// reason). The driver surfaces these as findings so suppressions cannot
// silently rot.
type Malformed struct {
	Pos  token.Pos
	Text string
}

// Directives is the parsed annotation set of one package.
type Directives struct {
	funcs     map[*ast.FuncDecl]map[string]bool
	allowsByF map[string][]allowSite // filename -> sites
	malformed []Malformed
}

// Parse extracts the directives from the package's files.
func Parse(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{
		funcs:     make(map[*ast.FuncDecl]map[string]bool),
		allowsByF: make(map[string][]allowSite),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d.parseComment(fset, c)
			}
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				if rest, ok := strings.CutPrefix(c.Text, obfusPrefix); ok {
					name := strings.TrimSpace(rest)
					if name == "" {
						d.malformed = append(d.malformed, Malformed{c.Pos(), c.Text})
						continue
					}
					set := d.funcs[fn]
					if set == nil {
						set = make(map[string]bool)
						d.funcs[fn] = set
					}
					set[name] = true
				}
			}
		}
	}
	return d
}

func (d *Directives) parseComment(fset *token.FileSet, c *ast.Comment) {
	rest, ok := strings.CutPrefix(c.Text, allowPrefix)
	if !ok {
		return
	}
	fields := strings.Fields(rest)
	// An analyzer name plus at least one word of reason is mandatory.
	if len(fields) < 2 {
		d.malformed = append(d.malformed, Malformed{c.Pos(), c.Text})
		return
	}
	pos := fset.Position(c.Pos())
	d.allowsByF[pos.Filename] = append(d.allowsByF[pos.Filename], allowSite{
		analyzer: fields[0],
		line:     pos.Line,
	})
}

// FuncHas reports whether fn's doc comment carries //obfus:<name>.
func (d *Directives) FuncHas(fn *ast.FuncDecl, name string) bool {
	return d.funcs[fn][name]
}

// Allowed reports whether a finding of the named analyzer at pos is
// suppressed by a //lint:allow comment on the same or the preceding line.
func (d *Directives) Allowed(analyzer string, fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	for _, a := range d.allowsByF[p.Filename] {
		if a.analyzer == analyzer && (a.line == p.Line || a.line == p.Line-1) {
			return true
		}
	}
	return false
}

// Malformed returns the unparsable directives found in the package.
func (d *Directives) MalformedDirectives() []Malformed { return d.malformed }

// ModuleIndex answers cross-package annotation queries ("is the callee in
// that other package marked //obfus:hotpath?") by lazily parsing the other
// package's sources. Construction is cheap; packages parse on first query
// and are cached. Safe for concurrent use.
type ModuleIndex struct {
	mu   sync.Mutex
	dirs map[string][]string        // import path -> absolute Go file paths
	fns  map[string]map[string]bool // import path -> "Recv.Name" or "Name" -> hotpath-style directive set key "name\x00dir"
}

// NewModuleIndex builds an index over import path -> source files.
func NewModuleIndex(files map[string][]string) *ModuleIndex {
	return &ModuleIndex{dirs: files, fns: make(map[string]map[string]bool)}
}

// FuncHas reports whether fn (a function or method in an indexed package)
// carries //obfus:<directive> on its declaration. Unknown packages and
// functions report false.
func (m *ModuleIndex) FuncHas(fn *types.Func, directive string) bool {
	if m == nil || fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	m.mu.Lock()
	defer m.mu.Unlock()
	set, ok := m.fns[path]
	if !ok {
		set = m.parseLocked(path)
		m.fns[path] = set
	}
	return set[funcKey(fn)+"\x00"+directive]
}

// funcKey names a function "Name" or "Recv.Name" with pointer receivers
// stripped, matching declKey below.
func funcKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}

func declKey(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name + "." + fn.Name.Name
	case *ast.IndexExpr: // generic receiver
		if id, ok := t.X.(*ast.Ident); ok {
			return id.Name + "." + fn.Name.Name
		}
	}
	return fn.Name.Name
}

func (m *ModuleIndex) parseLocked(path string) map[string]bool {
	set := make(map[string]bool)
	fset := token.NewFileSet()
	for _, file := range m.dirs[path] {
		f, err := parser.ParseFile(fset, file, nil, parser.ParseComments)
		if err != nil {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				if rest, ok := strings.CutPrefix(c.Text, obfusPrefix); ok {
					name := strings.TrimSpace(rest)
					if name != "" {
						set[declKey(fn)+"\x00"+name] = true
					}
				}
			}
		}
	}
	return set
}
