package analysis

import (
	"testing"

	"obfusmem/internal/analysis/analysistest"
	"obfusmem/internal/analysis/framework"
	"obfusmem/internal/analysis/load"
)

// TestRepositoryClean runs the full obfuslint suite over the module and
// requires zero findings: the invariants the analyzers encode hold for the
// tree as committed, and any future violation fails CI here (and in the
// `make lint` job) rather than in review.
func TestRepositoryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, err := analysistest.ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	res, err := load.Load(root, "./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(res.Packages) == 0 {
		t.Fatal("no packages loaded")
	}
	diags, err := framework.Run(res.Packages, All(), res.Module)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s: %s", res.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	// Suppression hygiene rides the same run: malformed directives, unknown
	// analyzer names, and //lint:allow comments that stopped suppressing
	// anything are findings too.
	for _, d := range framework.Hygiene(res.Packages, All()) {
		t.Errorf("%s: %s(%s): %s", res.Fset.Position(d.Pos), d.Analyzer, d.Rule, d.Message)
	}
}
