// Package analysistest runs one analyzer over a directory of golden test
// sources and compares its diagnostics against `// want` comments, in the
// style of golang.org/x/tools/go/analysis/analysistest.
//
// Expectations are written on the offending line:
//
//	badCall() // want "part of the expected message"
//
// Each quoted string is a substring expectation; a line may carry several.
// Lines with no want comment must produce no diagnostics, so every golden
// package also proves the analyzer's negative space — including
// `//lint:allow` suppressed cases, which must stay silent.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"obfusmem/internal/analysis/framework"
	"obfusmem/internal/analysis/load"
)

var (
	rootOnce sync.Once
	rootDir  string
	rootErr  error
)

// ModuleRoot locates the enclosing module's directory via the go tool.
func ModuleRoot() (string, error) {
	rootOnce.Do(func() {
		out, err := exec.Command("go", "env", "GOMOD").Output()
		if err != nil {
			rootErr = fmt.Errorf("go env GOMOD: %w", err)
			return
		}
		gomod := strings.TrimSpace(string(out))
		if gomod == "" || gomod == os.DevNull {
			rootErr = fmt.Errorf("not inside a module")
			return
		}
		rootDir = filepath.Dir(gomod)
	})
	return rootDir, rootErr
}

// Run loads testdata/src/<pkg> under the caller's directory as a package
// with the given synthetic import path, applies the analyzer, and fails t
// on any mismatch with the // want expectations. extraImports name
// standard-library packages the golden sources import beyond the module's
// own dependency graph.
func Run(t *testing.T, pkg, importPath string, a *framework.Analyzer, extraImports ...string) {
	t.Helper()
	root, err := ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "src", pkg)
	fp, module, err := load.Files(root, importPath, dir, extraImports...)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	diags, err := framework.Run([]*framework.Package{fp}, []*framework.Analyzer{a}, module)
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]string)
	for _, f := range fp.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "want ")
				if idx < 0 {
					continue
				}
				pos := fp.Fset.Position(c.Pos())
				k := key{filepath.Base(pos.Filename), pos.Line}
				wants[k] = append(wants[k], parseWants(t, text[idx+len("want "):], pos)...)
			}
		}
	}

	matched := make(map[key]int)
	for _, d := range diags {
		pos := fp.Fset.Position(d.Pos)
		k := key{filepath.Base(pos.Filename), pos.Line}
		exp := wants[k]
		if matched[k] < len(exp) && strings.Contains(d.Message, exp[matched[k]]) {
			matched[k]++
			continue
		}
		t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, d.Message)
	}
	for k, exp := range wants {
		for i := matched[k]; i < len(exp); i++ {
			t.Errorf("%s:%d: no diagnostic matched want %q", k.file, k.line, exp[i])
		}
	}
}

// parseWants extracts the sequence of quoted expectations from a want
// comment tail.
func parseWants(t *testing.T, s string, pos token.Position) []string {
	t.Helper()
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" || !strings.HasPrefix(s, `"`) {
			break
		}
		q, err := strconv.QuotedPrefix(s)
		if err != nil {
			t.Fatalf("%s: malformed want expectation %q", pos, s)
		}
		unq, err := strconv.Unquote(q)
		if err != nil {
			t.Fatalf("%s: malformed want expectation %q", pos, s)
		}
		out = append(out, unq)
		s = s[len(q):]
	}
	if len(out) == 0 {
		t.Fatalf("%s: want comment with no quoted expectation", pos)
	}
	return out
}
