package md5sim

import (
	"bytes"
	stdmd5 "crypto/md5"
	"encoding/hex"
	"testing"
	"testing/quick"

	"obfusmem/internal/xrand"
)

// RFC 1321 Appendix A.5 test suite.
func TestRFC1321Vectors(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "d41d8cd98f00b204e9800998ecf8427e"},
		{"a", "0cc175b9c0f1b6a831c399e269772661"},
		{"abc", "900150983cd24fb0d6963f7d28e17f72"},
		{"message digest", "f96b697d7cb7938d525a2f31aaf161d0"},
		{"abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"},
		{"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
			"d174ab98d277d9f5a5611c2c9f419d9f"},
		{"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
			"57edf4a22be3c955ac49da2e2107b67a"},
	}
	for _, c := range cases {
		got := Digest([]byte(c.in))
		if hex.EncodeToString(got[:]) != c.want {
			t.Errorf("Digest(%q) = %x, want %s", c.in, got, c.want)
		}
	}
}

func TestAgainstStdlib(t *testing.T) {
	r := xrand.New(2)
	for i := 0; i < 100; i++ {
		n := r.Intn(300)
		msg := make([]byte, n)
		r.Bytes(msg)
		got := Digest(msg)
		want := stdmd5.Sum(msg)
		if !bytes.Equal(got[:], want[:]) {
			t.Fatalf("len %d: got %x want %x", n, got, want)
		}
	}
}

// Messages near block boundaries exercise the padding logic.
func TestPaddingBoundaries(t *testing.T) {
	for _, n := range []int{54, 55, 56, 57, 63, 64, 65, 119, 120, 128} {
		msg := bytes.Repeat([]byte{0x42}, n)
		got := Digest(msg)
		want := stdmd5.Sum(msg)
		if !bytes.Equal(got[:], want[:]) {
			t.Errorf("len %d digest mismatch", n)
		}
	}
}

func TestDigestPropertyMatchesStdlib(t *testing.T) {
	f := func(msg []byte) bool {
		got := Digest(msg)
		want := stdmd5.Sum(msg)
		return bytes.Equal(got[:], want[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestComputeMAC(t *testing.T) {
	m1 := Compute(1, 0x1000, 42)
	m2 := Compute(1, 0x1000, 42)
	if m1 != m2 {
		t.Fatal("MAC not deterministic")
	}
	// Each component change flips the MAC (the tampering scenarios of §3.5).
	if Compute(2, 0x1000, 42) == m1 {
		t.Error("type change did not change MAC")
	}
	if Compute(1, 0x1040, 42) == m1 {
		t.Error("address change did not change MAC")
	}
	if Compute(1, 0x1000, 43) == m1 {
		t.Error("counter change did not change MAC (replay would succeed)")
	}
}

func TestComputeOverMessage(t *testing.T) {
	a := ComputeOverMessage([]byte("hello"))
	b := ComputeOverMessage([]byte("hellp"))
	if a == b {
		t.Error("distinct messages produced identical MACs")
	}
	if a != ComputeOverMessage([]byte("hello")) {
		t.Error("MAC not deterministic")
	}
}

func TestUnitTimingOverlap(t *testing.T) {
	u := NewUnit("mac")
	// encrypt-and-MAC: issue at t=0, overlapping an encryption that also
	// starts at 0; both done by max of the two latencies.
	done := u.Issue(0)
	if done != UnitLatency {
		t.Fatalf("done = %v, want %v", done, UnitLatency)
	}
	// Pipelined: second digest one cycle later.
	done2 := u.Issue(0)
	if done2 != UnitLatency+UnitCycle {
		t.Fatalf("done2 = %v, want %v", done2, UnitLatency+UnitCycle)
	}
	if u.Digests() != 2 {
		t.Fatalf("Digests = %d", u.Digests())
	}
	if e := u.EnergyPJ(); e != 2*MACEnergyPJ {
		t.Fatalf("EnergyPJ = %v", e)
	}
	u.Reset()
	if u.Digests() != 0 {
		t.Error("Reset failed")
	}
}

func BenchmarkDigest17(b *testing.B) {
	msg := make([]byte, 17)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Digest(msg)
	}
}
