// Package md5sim implements the MD5 message digest (RFC 1321) from scratch
// together with a timing model of the 64-stage pipelined hardware unit the
// paper synthesises for bus-communication authentication (Section 4: 12.5 mW,
// 0.214 mm²).
//
// MD5 is used here exactly as in the paper: as a lightweight MAC over the
// plaintext components of a memory request (type | address | counter), where
// the attacker never sees the MAC input in the clear (encrypt-and-MAC,
// Section 3.5). It is not used for collision-resistant signing.
package md5sim

import (
	"encoding/binary"
	"math"
)

// Size is the digest length in bytes.
const Size = 16

// BlockSize is the MD5 block size in bytes.
const BlockSize = 64

// shift amounts per round (RFC 1321).
var shifts = [64]uint{
	7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
	5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20,
	4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
	6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
}

// sines holds K[i] = floor(2^32 * |sin(i+1)|), computed at init time from
// the definition rather than pasted, as a self-check of the constant table.
var sines [64]uint32

func init() {
	for i := 0; i < 64; i++ {
		sines[i] = uint32(math.Floor(math.Abs(math.Sin(float64(i+1))) * (1 << 32)))
	}
}

// Digest computes the MD5 hash of msg.
func Digest(msg []byte) [Size]byte {
	a0, b0, c0, d0 := uint32(0x67452301), uint32(0xefcdab89), uint32(0x98badcfe), uint32(0x10325476)

	// Padding: 0x80, zeros, then the 64-bit little-endian bit length.
	bitLen := uint64(len(msg)) * 8
	padded := make([]byte, 0, len(msg)+BlockSize+8)
	padded = append(padded, msg...)
	padded = append(padded, 0x80)
	for len(padded)%BlockSize != 56 {
		padded = append(padded, 0)
	}
	var lenb [8]byte
	binary.LittleEndian.PutUint64(lenb[:], bitLen)
	padded = append(padded, lenb[:]...)

	var m [16]uint32
	for blk := 0; blk < len(padded); blk += BlockSize {
		for i := 0; i < 16; i++ {
			m[i] = binary.LittleEndian.Uint32(padded[blk+4*i:])
		}
		a, b, c, d := a0, b0, c0, d0
		for i := 0; i < 64; i++ {
			var f uint32
			var g int
			switch {
			case i < 16:
				f = (b & c) | (^b & d)
				g = i
			case i < 32:
				f = (d & b) | (^d & c)
				g = (5*i + 1) % 16
			case i < 48:
				f = b ^ c ^ d
				g = (3*i + 5) % 16
			default:
				f = c ^ (b | ^d)
				g = (7 * i) % 16
			}
			f = f + a + sines[i] + m[g]
			a = d
			d = c
			c = b
			b = b + (f<<shifts[i] | f>>(32-shifts[i]))
		}
		a0 += a
		b0 += b
		c0 += c
		d0 += d
	}

	var out [Size]byte
	binary.LittleEndian.PutUint32(out[0:], a0)
	binary.LittleEndian.PutUint32(out[4:], b0)
	binary.LittleEndian.PutUint32(out[8:], c0)
	binary.LittleEndian.PutUint32(out[12:], d0)
	return out
}
