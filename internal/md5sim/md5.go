// Package md5sim implements the MD5 message digest (RFC 1321) from scratch
// together with a timing model of the 64-stage pipelined hardware unit the
// paper synthesises for bus-communication authentication (Section 4: 12.5 mW,
// 0.214 mm²).
//
// MD5 is used here exactly as in the paper: as a lightweight MAC over the
// plaintext components of a memory request (type | address | counter), where
// the attacker never sees the MAC input in the clear (encrypt-and-MAC,
// Section 3.5). It is not used for collision-resistant signing.
package md5sim

import (
	"encoding/binary"
	"math"
)

// Size is the digest length in bytes.
const Size = 16

// BlockSize is the MD5 block size in bytes.
const BlockSize = 64

// shift amounts per round (RFC 1321).
var shifts = [64]uint{
	7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
	5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20,
	4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
	6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
}

// sines holds K[i] = floor(2^32 * |sin(i+1)|), computed at init time from
// the definition rather than pasted, as a self-check of the constant table.
var sines [64]uint32

func init() {
	for i := 0; i < 64; i++ {
		sines[i] = uint32(math.Floor(math.Abs(math.Sin(float64(i+1))) * (1 << 32)))
	}
}

// state is the running MD5 chaining value.
type state struct{ a, b, c, d uint32 }

// block folds one 64-byte block into the chaining value (RFC 1321 §3.4).
func (st *state) block(p []byte) {
	var m [16]uint32
	for i := 0; i < 16; i++ {
		m[i] = binary.LittleEndian.Uint32(p[4*i:])
	}
	a, b, c, d := st.a, st.b, st.c, st.d
	for i := 0; i < 64; i++ {
		var f uint32
		var g int
		switch {
		case i < 16:
			f = (b & c) | (^b & d)
			g = i
		case i < 32:
			f = (d & b) | (^d & c)
			g = (5*i + 1) % 16
		case i < 48:
			f = b ^ c ^ d
			g = (3*i + 5) % 16
		default:
			f = c ^ (b | ^d)
			g = (7 * i) % 16
		}
		f = f + a + sines[i] + m[g]
		a = d
		d = c
		c = b
		b = b + (f<<shifts[i] | f>>(32-shifts[i]))
	}
	st.a += a
	st.b += b
	st.c += c
	st.d += d
}

// Digest computes the MD5 hash of msg. Full blocks are folded straight from
// msg and the Merkle-Damgård padding (0x80, zeros, 64-bit little-endian bit
// length) is assembled in a fixed stack buffer, so Digest performs no heap
// allocation — it sits on the per-packet MAC hot path of the simulator.
func Digest(msg []byte) [Size]byte {
	st := state{0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476}
	bitLen := uint64(len(msg)) * 8
	for len(msg) >= BlockSize {
		st.block(msg[:BlockSize])
		msg = msg[BlockSize:]
	}
	// The tail plus padding spans one block, or two when the remaining
	// bytes leave fewer than 8 bytes for the length field.
	var tail [2 * BlockSize]byte
	n := copy(tail[:], msg)
	tail[n] = 0x80
	end := BlockSize
	if n+1 > BlockSize-8 {
		end = 2 * BlockSize
	}
	binary.LittleEndian.PutUint64(tail[end-8:], bitLen)
	st.block(tail[:BlockSize])
	if end == 2*BlockSize {
		st.block(tail[BlockSize:])
	}

	var out [Size]byte
	binary.LittleEndian.PutUint32(out[0:], st.a)
	binary.LittleEndian.PutUint32(out[4:], st.b)
	binary.LittleEndian.PutUint32(out[8:], st.c)
	binary.LittleEndian.PutUint32(out[12:], st.d)
	return out
}
