package md5sim

import (
	"encoding/binary"

	"obfusmem/internal/sim"
)

// Hardware model parameters from the paper's synthesis of the OpenCores
// 64-stage pipelined MD5 (Section 4: 12.5 mW, 0.214 mm²). With one MD5
// round per pipeline stage the per-stage critical path is a handful of
// adders and a rotate, so the unit clocks well above the AES datapath; we
// model a 1 ns stage, giving a 64 ns digest latency — short enough that,
// as Observation 4 requires, MAC generation overlaps request encryption
// and the PCM array access.
const (
	UnitCycle   = 1 * sim.Nanosecond
	UnitStages  = 64
	UnitLatency = UnitStages * UnitCycle
	UnitPowerMW = 12.5
	UnitAreaMM2 = 0.214
	// MACEnergyPJ is the energy of one digest: power × pipeline occupancy
	// of one cycle (12.5 mW × 1 ns = 12.5 pJ per issued message).
	MACEnergyPJ = UnitPowerMW * 1.0
)

// MAC is a truncated digest carried on the bus next to an encrypted request.
// 64 bits is ample for an attacker who cannot see the MAC input (the
// plaintext components are secret), per Section 3.5's "lightweight MAC"
// argument.
type MAC uint64

// Compute builds the encrypt-and-MAC tag β = H(type | address | counter)
// over the *plaintext* components of a request (Section 3.5).
func Compute(reqType byte, addr uint64, counter uint64) MAC {
	var buf [17]byte
	buf[0] = reqType
	binary.BigEndian.PutUint64(buf[1:9], addr)
	binary.BigEndian.PutUint64(buf[9:17], counter)
	d := Digest(buf[:])
	return MAC(binary.BigEndian.Uint64(d[:8]))
}

// ComputeOverMessage builds the encrypt-then-MAC tag α = H(M) over an
// already-encrypted message, the slower alternative the paper rejects.
func ComputeOverMessage(msg []byte) MAC {
	d := Digest(msg)
	return MAC(binary.BigEndian.Uint64(d[:8]))
}

// Unit is the timing model of one pipelined MD5 engine.
type Unit struct {
	pipe *sim.Pipeline
}

// NewUnit returns an idle MD5 unit.
func NewUnit(name string) *Unit {
	return &Unit{pipe: sim.NewPipeline(name, UnitLatency, UnitCycle)}
}

// Issue schedules one digest at or after `at` and returns its completion
// time. With encrypt-and-MAC the caller issues as soon as (type, address,
// counter) are known — potentially before the request reaches the bus — so
// MAC latency overlaps encryption; with encrypt-then-MAC the caller must
// pass at >= encryption completion.
func (u *Unit) Issue(at sim.Time) sim.Time { return u.pipe.Issue(at) }

// Digests returns the number of digests issued.
func (u *Unit) Digests() uint64 { return u.pipe.Ops() }

// EnergyPJ returns accumulated digest energy in picojoules.
func (u *Unit) EnergyPJ() float64 { return float64(u.pipe.Ops()) * MACEnergyPJ }

// Reset clears the pipeline.
func (u *Unit) Reset() { u.pipe.Reset() }
