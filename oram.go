package obfusmem

import (
	"obfusmem/internal/oram"
	"obfusmem/internal/xrand"
)

// PathORAM is the functional Path ORAM baseline (Stefanov et al.),
// re-exported for direct experimentation: tree, stash, position map, and
// the overhead counters the paper's comparison rests on.
type PathORAM = oram.ORAM

// PathORAMConfig shapes a Path ORAM tree.
type PathORAMConfig = oram.Config

// ORAM operations.
const (
	ORAMRead  = oram.OpRead
	ORAMWrite = oram.OpWrite
)

// ErrStashOverflow is returned when an access exceeds the stash bound —
// the failure/deadlock risk of Path ORAM (paper Section 2.3).
var ErrStashOverflow = oram.ErrStashOverflow

// NewPathORAM builds a functional Path ORAM over nBlocks logical blocks.
// Use oram defaults via DefaultPathORAMConfig for the paper's L=24, Z=4
// geometry, or a smaller tree for interactive experiments.
func NewPathORAM(cfg PathORAMConfig, nBlocks int, seed uint64) (*PathORAM, error) {
	return oram.New(cfg, nBlocks, xrand.New(seed))
}

// DefaultPathORAMConfig returns the paper's base ORAM parameters.
func DefaultPathORAMConfig() PathORAMConfig { return oram.DefaultConfig() }

// RingORAM is the functional Ring ORAM baseline (Ren et al., USENIX
// Security 2015), the bandwidth-optimised variant the paper cites (24x
// bandwidth overhead vs Path ORAM's 120x).
type RingORAM = oram.RingORAM

// RingORAMConfig shapes a Ring ORAM.
type RingORAMConfig = oram.RingConfig

// NewRingORAM builds a functional Ring ORAM over nBlocks logical blocks.
func NewRingORAM(cfg RingORAMConfig, nBlocks int, seed uint64) (*RingORAM, error) {
	return oram.NewRing(cfg, nBlocks, xrand.New(seed))
}

// DefaultRingORAMConfig returns the literature Z=4, S=6, A=3 parameters.
func DefaultRingORAMConfig() RingORAMConfig { return oram.DefaultRingConfig() }

// RecursiveORAM is a recursive Path ORAM: position maps stored in
// successively smaller ORAMs until the residual map fits on chip
// (Section 6.1's "placing it on a separate ORAM").
type RecursiveORAM = oram.Recursive

// NewRecursiveORAM builds a recursive ORAM over nBlocks data blocks with at
// most onChipLimit position-map entries kept on chip.
func NewRecursiveORAM(cfg PathORAMConfig, nBlocks, onChipLimit int, seed uint64) (*RecursiveORAM, error) {
	return oram.NewRecursive(cfg, nBlocks, onChipLimit, xrand.New(seed))
}
