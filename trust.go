package obfusmem

import (
	"obfusmem/internal/keys"
	"obfusmem/internal/xrand"
)

// BootApproach selects one of the paper's Section 3.1 trust-bootstrapping
// strategies.
type BootApproach = keys.Approach

// Bootstrapping approaches.
const (
	// BootNaive exchanges public keys in the clear during BIOS; secure
	// only if boot is physically isolated.
	BootNaive = keys.Naive
	// BootTrustedIntegrator relies on the system integrator burning each
	// component's public key into the counterpart's write-once registers.
	BootTrustedIntegrator = keys.TrustedIntegrator
	// BootUntrustedIntegrator adds mutual SGX-like attestation so wrongly
	// burned keys are caught at boot.
	BootUntrustedIntegrator = keys.UntrustedIntegrator
)

// BootScenario describes one boot-time threat setting.
type BootScenario struct {
	Approach BootApproach
	// HonestIntegrator is false when the system integrator burns
	// attacker-chosen keys.
	HonestIntegrator bool
	// BootTimeMITM places an active attacker on the bus during BIOS
	// execution.
	BootTimeMITM bool
	// MemoryObfusCapable is false for a memory chip without ObfusMem
	// crypto engines (attestation must reject it).
	MemoryObfusCapable bool
	Seed               uint64
}

// BootReport is the outcome of a simulated boot.
type BootReport struct {
	// Established is true when the processor and memory agreed on a
	// session key without detecting a problem.
	Established bool
	// Compromised is true when a session was established but an attacker
	// holds the key (the silent failure of the naive approach).
	Compromised bool
	// Err holds the detection that halted the boot, if any.
	Err error
}

// SimulateBoot runs the Section 3.1 trust-establishment protocol under a
// chosen threat setting: manufacturers certify and burn component keys, the
// integrator assembles the system, and the components run (possibly
// attested) signed Diffie-Hellman to derive a per-channel session key.
func SimulateBoot(s BootScenario) BootReport {
	r := xrand.New(s.Seed ^ 0xb007)
	procMfg := keys.NewManufacturer("proc-mfg", r)
	memMfg := keys.NewManufacturer("mem-mfg", r)
	proc := procMfg.Produce(keys.Processor, true, 2)
	mem := memMfg.Produce(keys.Memory, s.MemoryObfusCapable, 2)

	ig := keys.NewIntegrator(s.HonestIntegrator, r)
	if err := ig.Integrate(proc, mem); err != nil {
		return BootReport{Err: err}
	}
	var mitm *keys.BootMITM
	if s.BootTimeMITM {
		mitm = keys.NewBootMITM(r)
	}
	res, err := keys.EstablishSession(s.Approach, proc, mem,
		procMfg.CAKey(), memMfg.CAKey(), mitm, r)
	if err != nil {
		return BootReport{Err: err}
	}
	return BootReport{Established: true, Compromised: res.Compromised}
}
