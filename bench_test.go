// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus ablation benches for the design choices called
// out in DESIGN.md. Each benchmark regenerates its artefact and reports
// the headline quantity via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. Time-per-op measures simulator cost;
// the custom metrics carry the paper-comparable results.
package obfusmem_test

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"obfusmem"
	"obfusmem/internal/attack"
	"obfusmem/internal/bus"
	"obfusmem/internal/campaign"
	"obfusmem/internal/cpu"
	"obfusmem/internal/exp"
	"obfusmem/internal/keys"
	"obfusmem/internal/leakage"
	"obfusmem/internal/memctl"
	"obfusmem/internal/metrics"
	"obfusmem/internal/obfus"
	"obfusmem/internal/sim"
	"obfusmem/internal/stats"
	"obfusmem/internal/system"
	"obfusmem/internal/trace"
	"obfusmem/internal/workload"
	"obfusmem/internal/xrand"
)

// benchTrajectoryFile is this PR's entry in the BENCH_*.json perf
// trajectory: one machine-readable snapshot per PR, committed at the repo
// root, so simulator throughput and headline model numbers can be compared
// across the PR sequence. benchPrevTrajectoryFile is the preceding PR's
// committed snapshot, used as the regression baseline.
const (
	benchTrajectoryFile     = "BENCH_PR9.json"
	benchPrevTrajectoryFile = "BENCH_PR8.json"
)

// trajectoryRun is one wall-clock measurement in the trajectory file.
type trajectoryRun struct {
	Name         string  `json:"name"`
	Requests     int     `json:"requests"`
	NSPerRequest float64 `json:"ns_per_request"` // best of reps: simulator cost
}

// shardedRun is one point on the PR 9 intra-run scaling curve.
type shardedRun struct {
	Shards       int     `json:"shards"`
	EventsPerSec float64 `json:"events_per_sec"`
	WallClockSec float64 `json:"wall_clock_sec"`
	SpeedupX     float64 `json:"speedup_x"` // vs the shards=1 sequential reference
}

// trajectory is the BENCH_*.json schema.
type trajectory struct {
	PR       int             `json:"pr"`
	Label    string          `json:"label"`
	Go       string          `json:"go"`
	GOOS     string          `json:"goos"`
	GOARCH   string          `json:"goarch"`
	Runs     []trajectoryRun `json:"runs"`
	Headline struct {
		Requests        int     `json:"requests"`
		ORAMOverheadPct float64 `json:"oram_overhead_pct"`
		ObfusOverhead   float64 `json:"obfus_overhead_pct"`
		SpeedupX        float64 `json:"speedup_x"`
	} `json:"headline"`
	MetricsOverheadPct    float64 `json:"metrics_overhead_pct"`          // enabled vs disabled, same run
	TraceOverheadPct      float64 `json:"trace_overhead_pct"`            // tracing on vs off, same run
	RecoveryOverheadPct   float64 `json:"recovery_overhead_pct"`         // recovery protocol armed, zero faults, vs recovery off
	LeakageOverheadPct    float64 `json:"leakage_overhead_pct"`          // observer + leakage evaluation on vs off, same run
	CampaignOverheadPct   float64 `json:"campaign_overhead_pct"`         // journaled campaign per cell vs raw same-cell loop
	CampaignOverheadPerMS float64 `json:"campaign_overhead_ms_per_cell"` // absolute per-cell durability tax (hash + fsync'd commit + merge share)
	VsPrevPct             float64 `json:"vs_prev_pct"`                   // nil-off ns/request vs previous PR's snapshot

	// Engine compares the PR 4 free-list event engine against the frozen
	// pre-rework boxed container/heap baseline (sim.BaselineEngine) on the
	// same 64-deep churn workload.
	Engine struct {
		EventsPerSec           float64 `json:"events_per_sec"`
		BaselineEventsPerSec   float64 `json:"baseline_events_per_sec"`
		SpeedupX               float64 `json:"speedup_x"`
		AllocsPerEvent         float64 `json:"allocs_per_event"`
		BaselineAllocsPerEvent float64 `json:"baseline_allocs_per_event"`
	} `json:"engine"`
	// Sharded is the PR 9 scaling curve: the 8-channel open-loop
	// configuration (the Figure 5 channel count) run at shards ∈ {1,2,4,8},
	// with the shards=1 sequential reference as the baseline. Cores records
	// the machine's CPU count because the curve is meaningless without it:
	// conservative-lookahead workers cannot outrun the sequential reference
	// on a single core (the workers just take turns), so the ≥2x speedup
	// acceptance assertion is gated on Cores >= 4 and the recorded numbers
	// are always the honest measurement, whatever the hardware.
	// BackendsCellSec records one `-exp backends` closed-loop cell on the
	// sequential engine, the cross-PR anchor showing the sharded work left
	// the reference path's cost unchanged.
	Sharded struct {
		Cores           int          `json:"cores"`
		Channels        int          `json:"channels"`
		RequestsPerLane int          `json:"requests_per_lane"`
		Runs            []shardedRun `json:"runs"`
		BackendsCellSec float64      `json:"backends_cell_sec"`
	} `json:"sharded"`
	// ObfusLegAllocsPerOp is the steady-state allocation count of one
	// authenticated read+write pair through the full pooled datapath
	// (recovery armed, zero faults) after warmup; the 0 target is asserted
	// hard in internal/obfus's TestReadWriteLegZeroAllocs.
	ObfusLegAllocsPerOp float64 `json:"obfus_leg_allocs_per_op"`
	// SuiteWallClockSec is the wall-clock cost of the headline Table 3 run
	// (3 machines x 15 benchmarks at Headline.Requests), comparable across
	// PR snapshots on the same hardware.
	SuiteWallClockSec float64 `json:"suite_wall_clock_sec"`
}

// engineChurnEvents sizes the events-per-second measurement; large enough
// that per-call timer overhead vanishes, small enough to stay sub-second.
const engineChurnEvents = 2_000_000

// measureChurn times a pre-warmed engine's Step loop (best of reps) and
// samples its steady-state allocation rate.
func measureChurn(step func(), reps int) (eventsPerSec, allocsPerEvent float64) {
	best := time.Duration(1<<63 - 1)
	for r := 0; r < reps; r++ {
		start := time.Now()
		for i := 0; i < engineChurnEvents; i++ {
			step()
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(engineChurnEvents) / best.Seconds(), testing.AllocsPerRun(10000, step)
}

// newEngineChurn builds the 64-deep self-sustaining churn (every fired
// event schedules a successor) on the PR 4 engine, mirroring
// BenchmarkEngineChurn in internal/sim.
func newEngineChurn() func() {
	e := sim.NewEngine()
	var fn func()
	fn = func() { e.Schedule(e.Now()+sim.Time(1+e.Fired()%13), fn) }
	for i := 0; i < 64; i++ {
		e.Schedule(sim.Time(i), fn)
	}
	return func() { e.Step() }
}

// newBaselineChurn builds the identical churn on the frozen pre-rework
// engine.
func newBaselineChurn() func() {
	e := sim.NewBaselineEngine()
	var n uint64
	var fn func()
	fn = func() { n++; e.Schedule(e.Now()+sim.Time(1+n%13), fn) }
	for i := 0; i < 64; i++ {
		e.Schedule(sim.Time(i), fn)
	}
	return func() { e.Step() }
}

// obfusLegAllocs replicates internal/obfus's steady-state rig (recovery
// armed, zero faults, two channels) and measures allocations per
// authenticated read+write pair after warmup.
func obfusLegAllocs() float64 {
	const channels = 2
	cfg := obfus.DefaultAuth()
	cfg.Recovery = obfus.DefaultRecovery()
	b := bus.New(bus.DefaultConfig(channels))
	mcfg := memctl.DefaultConfig(channels)
	mcfg.PCM.AdaptiveIdleClose = 0
	mc := memctl.New(mcfg)
	table := keys.NewSessionKeyTable(channels, mc.Mapper().ChannelOf)
	for ch := 0; ch < channels; ch++ {
		var k [16]byte
		k[0] = byte(ch + 1)
		k[15] = 0xA5
		table.SetKey(ch, k)
	}
	ctrl := obfus.New(cfg, b, mc, table, xrand.New(42))
	at := sim.Time(0)
	for i := 0; i < 32; i++ {
		ctrl.Read(at, uint64(0x1000+64*i))
		ctrl.Write(at, uint64(0x9000+64*i), at)
		at += 200 * sim.Nanosecond
	}
	addr := uint64(0)
	return testing.AllocsPerRun(500, func() {
		ctrl.Read(at, 0x1000+addr)
		ctrl.Write(at, 0x9000+addr, at)
		addr = (addr + 64) % 4096
		at += 200 * sim.Nanosecond
	})
}

// shardedScaling measures the open-loop run's wall clock and event
// throughput at each shard count (best of reps). Every run is the same
// simulation — the byte-identity gate (TestShardsOneVsManyIdentical)
// guarantees identical results — so the curve isolates pure engine cost.
func shardedScaling(perLane, reps int, shardCounts []int) []shardedRun {
	runs := make([]shardedRun, 0, len(shardCounts))
	for _, shards := range shardCounts {
		best := time.Duration(1<<63 - 1)
		var fired uint64
		for r := 0; r < reps; r++ {
			cfg := system.DefaultOpenLoopConfig()
			cfg.Shards = shards
			cfg.Requests = perLane
			start := time.Now()
			res := system.RunOpenLoop(cfg)
			if d := time.Since(start); d < best {
				best = d
			}
			fired = res.EventsFired
		}
		runs = append(runs, shardedRun{
			Shards:       shards,
			EventsPerSec: float64(fired) / best.Seconds(),
			WallClockSec: best.Seconds(),
		})
	}
	for i := range runs {
		runs[i].SpeedupX = runs[0].WallClockSec / runs[i].WallClockSec
	}
	return runs
}

// wallClockRun measures simulator wall-clock cost per request for one
// machine configuration (best of reps, to shed scheduler noise). With
// traced set, the run carries a fresh span recorder through the system and
// the core model — the tracing-on cost.
func wallClockRun(tb testing.TB, cfg system.Config, bench string, n, reps int, traced bool) float64 {
	tb.Helper()
	p, err := workload.ByName(bench)
	if err != nil {
		tb.Fatal(err)
	}
	best := time.Duration(1<<63 - 1)
	for r := 0; r < reps; r++ {
		ccfg := cpu.DefaultConfig()
		if traced {
			rec := trace.New(trace.DefaultLimit)
			cfg.Trace = rec
			ccfg.Trace = rec
		}
		sys := system.New(cfg)
		start := time.Now()
		cpu.Run(p, n, sys, ccfg, cfg.Seed+7)
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / float64(n)
}

// leakageWallClock measures one observed run — passive bus observer,
// defender-side request probe, full leakage evaluation after the run —
// and returns ns/request (best of reps), the leakage-scoring-on side of
// the trajectory's LeakageOverheadPct.
func leakageWallClock(tb testing.TB, cfg system.Config, bench string, n, reps int) float64 {
	tb.Helper()
	p, err := workload.ByName(bench)
	if err != nil {
		tb.Fatal(err)
	}
	best := time.Duration(1<<63 - 1)
	for r := 0; r < reps; r++ {
		sys := system.New(cfg)
		obs := attack.NewObserver(cfg.Channels, 1<<21)
		sys.Bus().AttachObserver(obs)
		probe := leakage.NewProbe(sys)
		start := time.Now()
		cpu.Run(p, n, probe, cpu.DefaultConfig(), cfg.Seed+7)
		leakage.Evaluate(obs.WireTrace(), probe.Issued(), nil)
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / float64(n)
}

// campaignWallClock measures the journaled campaign runner's per-cell
// orchestration tax: the same four-cell grid run (a) through campaign.Run
// — manifest expansion, content hashing, fsync'd journal commits, merge —
// and (b) as a raw loop over the identical simulations. Returns per-cell
// nanoseconds for both (best of reps).
func campaignWallClock(tb testing.TB, n, reps int) (campPerCell, rawPerCell float64) {
	tb.Helper()
	man := campaign.Manifest{
		Name:     "bench",
		Requests: n,
		Schemes:  []string{"unprotected", "obfusmem-auth"},
		Workloads: []string{
			"milc", "mcf",
		},
		Seeds: []uint64{9},
	}
	const cells = 4
	bestCamp := time.Duration(1<<63 - 1)
	for r := 0; r < reps; r++ {
		dir, err := os.MkdirTemp("", "bench-campaign")
		if err != nil {
			tb.Fatal(err)
		}
		start := time.Now()
		cr, err := campaign.NewRunner(man, campaign.Options{Dir: dir, Workers: 1})
		if err != nil {
			tb.Fatal(err)
		}
		if _, err := cr.Run(context.Background()); err != nil {
			tb.Fatal(err)
		}
		if d := time.Since(start); d < bestCamp {
			bestCamp = d
		}
		os.RemoveAll(dir)
	}

	bestRaw := time.Duration(1<<63 - 1)
	for r := 0; r < reps; r++ {
		start := time.Now()
		for _, scheme := range man.Schemes {
			for _, bench := range man.Workloads {
				cfg, err := system.DefaultConfigByName(scheme)
				if err != nil {
					tb.Fatal(err)
				}
				cfg.Seed = 9
				p, err := workload.ByName(bench)
				if err != nil {
					tb.Fatal(err)
				}
				cpu.Run(p, n, system.New(cfg), cpu.DefaultConfig(), cfg.Seed+7)
			}
		}
		if d := time.Since(start); d < bestRaw {
			bestRaw = d
		}
	}
	return float64(bestCamp.Nanoseconds()) / cells, float64(bestRaw.Nanoseconds()) / cells
}

// TestEmitBenchTrajectory regenerates this PR's BENCH_*.json snapshot. It
// runs as part of the ordinary suite so the trajectory never goes stale.
func TestEmitBenchTrajectory(t *testing.T) {
	if testing.Short() {
		// Wall-clock measurements are meaningless under -short's companions
		// (-race instrumentation in particular inflates them several-fold).
		t.Skip("trajectory snapshot needs undisturbed wall-clock runs")
	}
	const n, reps = 3000, 3
	traj := trajectory{
		PR:     9,
		Label:  "sharded intra-run simulation: per-channel event queues with conservative lookahead synchronization",
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
	}

	// Event-engine before/after on identical churn. The ≥1.5x target is the
	// PR 4 acceptance line; the hard error trips only on a gross miss so
	// noisy shared hardware can't flake the suite.
	traj.Engine.EventsPerSec, traj.Engine.AllocsPerEvent = measureChurn(newEngineChurn(), reps)
	traj.Engine.BaselineEventsPerSec, traj.Engine.BaselineAllocsPerEvent = measureChurn(newBaselineChurn(), reps)
	traj.Engine.SpeedupX = traj.Engine.EventsPerSec / traj.Engine.BaselineEventsPerSec
	if traj.Engine.SpeedupX < 1.2 {
		t.Errorf("engine speedup %.2fx vs boxed-heap baseline, want >= 1.5x", traj.Engine.SpeedupX)
	}
	if traj.Engine.AllocsPerEvent != 0 {
		t.Errorf("engine churn allocates %.2f allocs/event, want 0", traj.Engine.AllocsPerEvent)
	}

	// Pooled-datapath allocation rate (0 target asserted hard in
	// internal/obfus; recorded here for the trajectory).
	traj.ObfusLegAllocsPerOp = obfusLegAllocs()

	// Sharded-engine scaling on the 8-channel open-loop configuration.
	// The ≥2x-at-4-shards acceptance line only makes sense with real
	// parallel hardware underneath: on fewer than 4 cores the workers
	// time-slice one another and the synchronization cost is all that's
	// left, so the assertion is gated on the core count and the snapshot
	// records whatever this machine honestly measured.
	traj.Sharded.Cores = runtime.NumCPU()
	traj.Sharded.Channels = system.DefaultOpenLoopConfig().Channels
	traj.Sharded.RequestsPerLane = 600
	traj.Sharded.Runs = shardedScaling(traj.Sharded.RequestsPerLane, reps, []int{1, 2, 4, 8})
	for _, r := range traj.Sharded.Runs {
		if r.Shards == 4 && traj.Sharded.Cores >= 4 && r.SpeedupX < 2 {
			t.Errorf("sharded engine speedup %.2fx at shards=4 on %d cores, want >= 2x",
				r.SpeedupX, traj.Sharded.Cores)
		}
	}
	backendsStart := time.Now()
	if tbl := exp.Backends(exp.QuickOptions()); tbl.Rows() == 0 {
		t.Fatal("empty backends table")
	}
	traj.Sharded.BackendsCellSec = time.Since(backendsStart).Seconds()

	base := system.DefaultConfig(system.Unprotected)
	base.Seed = 9
	obf := system.DefaultConfig(system.ObfusMem)
	obf.Seed = 9
	pal := system.DefaultConfig(system.Palermo)
	pal.Seed = 9
	plainNS := wallClockRun(t, base, "milc", n, reps, false)
	obfNS := wallClockRun(t, obf, "milc", n, reps, false)
	palNS := wallClockRun(t, pal, "milc", n, reps, false)
	traj.Runs = append(traj.Runs,
		trajectoryRun{Name: "unprotected/milc", Requests: n, NSPerRequest: plainNS},
		trajectoryRun{Name: "obfusmem-auth/milc", Requests: n, NSPerRequest: obfNS},
		trajectoryRun{Name: "palermo/milc", Requests: n, NSPerRequest: palNS},
	)

	// Same protected run with the observability layer on: the delta is the
	// cost of metrics, which must stay under 5%. Wall-clock on shared CI
	// hardware is noisy, so the hard assertion uses a generous multiple;
	// the recorded number is the honest measurement.
	obfMet := obf
	obfMet.Metrics = metrics.NewRegistry()
	metNS := wallClockRun(t, obfMet, "milc", n, reps, false)
	traj.Runs = append(traj.Runs,
		trajectoryRun{Name: "obfusmem-auth+metrics/milc", Requests: n, NSPerRequest: metNS})
	traj.MetricsOverheadPct = (metNS - obfNS) / obfNS * 100
	if traj.MetricsOverheadPct > 25 {
		t.Errorf("metrics overhead %.1f%% is far beyond the <5%% budget", traj.MetricsOverheadPct)
	}

	// Same run again with the tracing layer on (span recorder through the
	// system and the core model). Tracing is a debugging tool, not an
	// always-on instrument, so its budget is looser than metrics'; the
	// recorded number keeps it honest.
	trcNS := wallClockRun(t, obf, "milc", n, reps, true)
	traj.Runs = append(traj.Runs,
		trajectoryRun{Name: "obfusmem-auth+trace/milc", Requests: n, NSPerRequest: trcNS})
	traj.TraceOverheadPct = (trcNS - obfNS) / obfNS * 100

	// Same run with the fault-recovery protocol armed but zero faults
	// injected. The recovery code lives entirely on failure paths, so this
	// must be within noise of the recovery-off run (the simulated-time
	// equality is asserted exactly in TestRecoveryZeroFaultNoOverhead; this
	// records the simulator's wall-clock side of the same claim).
	obfRec := obf
	obfRec.Obfus.Recovery = obfus.DefaultRecovery()
	recNS := wallClockRun(t, obfRec, "milc", n, reps, false)
	traj.Runs = append(traj.Runs,
		trajectoryRun{Name: "obfusmem-auth+recovery/milc", Requests: n, NSPerRequest: recNS})
	traj.RecoveryOverheadPct = (recNS - obfNS) / obfNS * 100
	if traj.RecoveryOverheadPct > 25 {
		t.Errorf("zero-fault recovery overhead %.1f%% is far beyond the within-noise budget", traj.RecoveryOverheadPct)
	}

	// Same run with the leakage observatory attached: passive observer on
	// the bus, request probe on the defender side, and the full
	// inference-and-scoring evaluation after the run. Leakage quantification
	// is an offline analysis, so its cost rides outside the simulated
	// machine; the recorded number keeps the whole harness honest.
	leakNS := leakageWallClock(t, obf, "milc", n, reps)
	traj.Runs = append(traj.Runs,
		trajectoryRun{Name: "obfusmem-auth+leakage/milc", Requests: n, NSPerRequest: leakNS})
	traj.LeakageOverheadPct = (leakNS - obfNS) / obfNS * 100

	// The campaign runner's orchestration tax: hashing every cell identity,
	// fsync'ing every journal commit, and merging results. The tax is a
	// fixed cost per cell — dominated by the durability fsyncs — so the
	// percentage is large against this benchmark's deliberately tiny cells
	// and vanishes against production-size ones; the absolute ms/cell is
	// the number that must stay bounded.
	campNS, rawNS := campaignWallClock(t, n, reps)
	traj.Runs = append(traj.Runs,
		trajectoryRun{Name: "campaign/4cells", Requests: n, NSPerRequest: campNS / float64(n)})
	traj.CampaignOverheadPct = (campNS - rawNS) / rawNS * 100
	traj.CampaignOverheadPerMS = (campNS - rawNS) / 1e6
	if traj.CampaignOverheadPerMS > 25 {
		t.Errorf("campaign orchestration tax %.1fms per cell, want fixed low-single-digit ms (hash + fsync'd commit)", traj.CampaignOverheadPerMS)
	}

	// Nil-off regression vs the previous PR's committed snapshot: the
	// tracing hooks must be free when disabled (<2% target). Wall clock on
	// shared hardware swings far more than 2% run to run, so the hard error
	// fires only on a gross (>50%) regression; the honest delta is recorded
	// in the snapshot for the reviewer.
	if raw, err := os.ReadFile(benchPrevTrajectoryFile); err == nil {
		var prev trajectory
		if err := json.Unmarshal(raw, &prev); err == nil {
			for _, r := range prev.Runs {
				if r.Name == "obfusmem-auth/milc" && r.NSPerRequest > 0 {
					traj.VsPrevPct = (obfNS - r.NSPerRequest) / r.NSPerRequest * 100
					if traj.VsPrevPct > 50 {
						t.Errorf("nil-off ns/request regressed %.1f%% vs %s", traj.VsPrevPct, benchPrevTrajectoryFile)
					}
				}
			}
		}
	}

	// Headline model numbers at a stable scale; the timed run doubles as
	// the suite wall-clock sample (3 machines x 15 benchmarks).
	o := exp.DefaultOptions()
	o.Requests = 1500
	suiteStart := time.Now()
	d := exp.Table3Numbers(o)
	traj.SuiteWallClockSec = time.Since(suiteStart).Seconds()
	traj.Headline.Requests = o.Requests
	traj.Headline.ORAMOverheadPct = stats.Mean(d.ORAMOverhead)
	traj.Headline.ObfusOverhead = stats.Mean(d.ObfusOverhead)
	traj.Headline.SpeedupX = stats.Mean(d.Speedup)

	raw, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(benchTrajectoryFile, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkMetricsOverhead measures the observability layer's hot-path
// cost directly: the same ObfusMem+Auth run with the registry off and on.
// The nil-instrument fast path must keep "off" within noise of the seed
// repo and "on" within the 5% budget.
func BenchmarkMetricsOverhead(b *testing.B) {
	p, err := workload.ByName("milc")
	if err != nil {
		b.Fatal(err)
	}
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := system.DefaultConfig(system.ObfusMem)
			cfg.Seed = 9
			if on {
				cfg.Metrics = metrics.NewRegistry()
			}
			for i := 0; i < b.N; i++ {
				sys := system.New(cfg)
				cpu.Run(p, 3000, sys, cpu.DefaultConfig(), cfg.Seed+7)
			}
		})
	}
}

// BenchmarkTraceOverhead measures the tracing layer's hot-path cost
// directly: the same ObfusMem+Auth run with the span recorder off (nil
// hooks — must be free) and on.
func BenchmarkTraceOverhead(b *testing.B) {
	p, err := workload.ByName("milc")
	if err != nil {
		b.Fatal(err)
	}
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := system.DefaultConfig(system.ObfusMem)
			cfg.Seed = 9
			ccfg := cpu.DefaultConfig()
			for i := 0; i < b.N; i++ {
				if on {
					rec := trace.New(trace.DefaultLimit)
					cfg.Trace = rec
					ccfg.Trace = rec
				}
				sys := system.New(cfg)
				cpu.Run(p, 3000, sys, ccfg, cfg.Seed+7)
			}
		})
	}
}

// benchOpts scales each in-benchmark experiment: large enough to be
// statistically stable, small enough to iterate.
func benchOpts() obfusmem.ExperimentOptions {
	return obfusmem.ExperimentOptions{Requests: 2000, Seed: 42}
}

func expOpts() exp.Options {
	o := exp.DefaultOptions()
	o.Requests = 2000
	return o
}

// BenchmarkTable1 regenerates the benchmark-characteristics table and
// reports the mean relative error of the measured request gap vs Table 1.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := obfusmem.Table1(benchOpts())
		if t.Rows() != 15 {
			b.Fatalf("rows = %d", t.Rows())
		}
	}
}

// BenchmarkTable3 regenerates the ORAM vs ObfusMem comparison and reports
// the suite-average overheads and speedup (paper: 946.1%, 10.9%, 9.1x).
func BenchmarkTable3(b *testing.B) {
	var d exp.Table3Data
	for i := 0; i < b.N; i++ {
		d = exp.Table3Numbers(expOpts())
	}
	b.ReportMetric(stats.Mean(d.ORAMOverhead), "oram-%")
	b.ReportMetric(stats.Mean(d.ObfusOverhead), "obfus-%")
	b.ReportMetric(stats.Mean(d.Speedup), "speedup-x")
}

// BenchmarkFigure4 regenerates the protection-level breakdown and reports
// the three suite averages (paper: 2.2%, 8.3%, 10.9%).
func BenchmarkFigure4(b *testing.B) {
	var d exp.Figure4Data
	for i := 0; i < b.N; i++ {
		d = exp.Figure4Numbers(expOpts())
	}
	b.ReportMetric(stats.Mean(d.EncOnly), "enc-%")
	b.ReportMetric(stats.Mean(d.ObfusMem), "obfus-%")
	b.ReportMetric(stats.Mean(d.ObfusAuth), "auth-%")
}

// BenchmarkFigure5 regenerates the channel sweep and reports the
// eight-channel endpoints (paper: UNOPT 16.3/18.8%, OPT 10.1/13.2%).
func BenchmarkFigure5(b *testing.B) {
	o := expOpts()
	o.Requests = 1200 // 4 channel counts x 5 configs x 15 benchmarks
	var d exp.Figure5Data
	for i := 0; i < b.N; i++ {
		d = exp.Figure5Numbers(o)
	}
	last := len(d.Channels) - 1
	b.ReportMetric(d.UnoptNoMAC[last], "unopt8-%")
	b.ReportMetric(d.UnoptAuth[last], "unopt8auth-%")
	b.ReportMetric(d.OptNoMAC[last], "opt8-%")
	b.ReportMetric(d.OptAuth[last], "opt8auth-%")
}

// BenchmarkEnergy regenerates the Section 5.2 energy/lifetime analysis.
func BenchmarkEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := exp.Energy(expOpts())
		if t.Rows() == 0 {
			b.Fatal("empty energy table")
		}
	}
}

// BenchmarkTable4 regenerates the measured security comparison.
func BenchmarkTable4(b *testing.B) {
	o := expOpts()
	o.Requests = 1200
	for i := 0; i < b.N; i++ {
		t := exp.Table4(o)
		if t.Rows() < 11 {
			b.Fatalf("rows = %d", t.Rows())
		}
	}
}

// BenchmarkTampering regenerates the Section 3.5 active-attack matrix.
func BenchmarkTampering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := exp.Tampering(expOpts())
		if t.Rows() != 5 {
			b.Fatalf("rows = %d", t.Rows())
		}
	}
}

// --- Ablation benches for the design choices DESIGN.md calls out. ---

// runMachine measures one machine's execution time on a benchmark.
func runMachine(b *testing.B, cfg obfusmem.MachineConfig, bench string) obfusmem.Result {
	b.Helper()
	m, err := obfusmem.NewMachine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	res, err := m.RunBenchmark(bench, 3000)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkDummyDesigns compares the three Section 3.3 dummy-address
// designs on a read-heavy workload, reporting extra PCM array writes per
// 1000 requests (fixed must be 0).
func BenchmarkDummyDesigns(b *testing.B) {
	designs := []struct {
		name string
		d    obfusmem.DummyDesign
	}{
		{"fixed", obfusmem.FixedAddress},
		{"original", obfusmem.OriginalAddress},
		{"random", obfusmem.RandomAddress},
	}
	for _, d := range designs {
		b.Run(d.name, func(b *testing.B) {
			var extra float64
			for i := 0; i < b.N; i++ {
				m, err := obfusmem.NewMachine(obfusmem.MachineConfig{
					Protection: obfusmem.ProtectionObfusMem, Dummy: d.d, Seed: 9})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := m.RunBenchmark("bwaves", 3000); err != nil {
					b.Fatal(err)
				}
				t := m.Traffic()
				extra = float64(t.DummyPCMWrites+t.DummyPCMReads) / 3.0
			}
			b.ReportMetric(extra, "dummyPCM/kreq")
		})
	}
}

// BenchmarkPairingOrder compares read-then-write vs write-then-read pair
// order (Section 3.3: reads are on the critical path).
func BenchmarkPairingOrder(b *testing.B) {
	orders := []struct {
		name string
		o    obfusmem.PairOrder
	}{
		{"read-then-write", obfusmem.ReadThenWrite},
		{"write-then-read", obfusmem.WriteThenRead},
	}
	for _, o := range orders {
		b.Run(o.name, func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				res := runMachine(b, obfusmem.MachineConfig{
					Protection: obfusmem.ProtectionObfusMem, Order: o.o, Seed: 9}, "milc")
				lat = res.MeanReadNS
			}
			b.ReportMetric(lat, "read-ns")
		})
	}
}

// BenchmarkMACMode compares encrypt-and-MAC vs encrypt-then-MAC
// (Observation 4: overlap wins).
func BenchmarkMACMode(b *testing.B) {
	modes := []struct {
		name string
		m    obfusmem.MACMode
	}{
		{"none", obfusmem.MACNone},
		{"encrypt-and-MAC", obfusmem.EncryptAndMAC},
		{"encrypt-then-MAC", obfusmem.EncryptThenMAC},
	}
	for _, mm := range modes {
		b.Run(mm.name, func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				res := runMachine(b, obfusmem.MachineConfig{
					Protection: obfusmem.ProtectionObfusMem, MAC: mm.m, Seed: 9}, "milc")
				lat = res.MeanReadNS
			}
			b.ReportMetric(lat, "read-ns")
		})
	}
}

// BenchmarkSymmetricAlt compares the paper's split dummy pairs against the
// symmetric same-size-request alternative (Section 3.3), reporting bus
// bytes per request — the bandwidth cost the paper's split design avoids
// when real requests substitute for dummies.
func BenchmarkSymmetricAlt(b *testing.B) {
	for _, sym := range []bool{false, true} {
		name := "split-pairs"
		if sym {
			name = "symmetric"
		}
		b.Run(name, func(b *testing.B) {
			var perReq float64
			for i := 0; i < b.N; i++ {
				m, err := obfusmem.NewMachine(obfusmem.MachineConfig{
					Protection: obfusmem.ProtectionObfusMem, Symmetric: sym, Seed: 9})
				if err != nil {
					b.Fatal(err)
				}
				// lbm is write-heavy: the substitute-real optimisation
				// merges most writes into read pairs.
				if _, err := m.RunBenchmark("lbm", 3000); err != nil {
					b.Fatal(err)
				}
				perReq = float64(m.Traffic().BusBytes) / 3000
			}
			b.ReportMetric(perReq, "busB/req")
		})
	}
}

// BenchmarkShardedOpenLoop sweeps shard counts on the 8-channel open-loop
// configuration, reporting event throughput. The results are bit-identical
// at every shard count (TestShardsOneVsManyIdentical); only the engine's
// cost varies.
func BenchmarkShardedOpenLoop(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "1shard", 2: "2shards", 4: "4shards", 8: "8shards"}[shards], func(b *testing.B) {
			var fired uint64
			for i := 0; i < b.N; i++ {
				cfg := system.DefaultOpenLoopConfig()
				cfg.Shards = shards
				cfg.Requests = 400
				fired = system.RunOpenLoop(cfg).EventsFired
			}
			b.ReportMetric(float64(fired)/(b.Elapsed().Seconds()/float64(b.N)), "events/sec")
		})
	}
}

// BenchmarkChannelScaling sweeps channels for the paper-preferred OPT
// policy, reporting mean read latency.
func BenchmarkChannelScaling(b *testing.B) {
	for _, ch := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "1ch", 2: "2ch", 4: "4ch", 8: "8ch"}[ch], func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				res := runMachine(b, obfusmem.MachineConfig{
					Protection: obfusmem.ProtectionObfusMemAuth, Channels: ch,
					Policy: obfusmem.PolicyOPT, Seed: 9}, "bwaves")
				lat = res.MeanReadNS
			}
			b.ReportMetric(lat, "read-ns")
		})
	}
}

// BenchmarkIntegrityTree measures the cost of adding Bonsai Merkle
// verification traffic to ObfusMem+Auth (the paper's full baseline
// assumption), reporting mean read latency with and without.
func BenchmarkIntegrityTree(b *testing.B) {
	for _, integ := range []bool{false, true} {
		name := "off"
		if integ {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				res := runMachine(b, obfusmem.MachineConfig{
					Protection:    obfusmem.ProtectionObfusMemAuth,
					IntegrityTree: integ, Seed: 9}, "mcf")
				lat = res.MeanReadNS
			}
			b.ReportMetric(lat, "read-ns")
		})
	}
}

// BenchmarkTimingOblivious measures the Section 6.2 extension's cost on a
// memory-intensive workload.
func BenchmarkTimingOblivious(b *testing.B) {
	for _, obliv := range []bool{false, true} {
		name := "standard"
		if obliv {
			name = "oblivious"
		}
		b.Run(name, func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				res := runMachine(b, obfusmem.MachineConfig{
					Protection:      obfusmem.ProtectionObfusMem,
					TimingOblivious: obliv, Seed: 9}, "milc")
				lat = res.MeanReadNS
			}
			b.ReportMetric(lat, "read-ns")
		})
	}
}

// BenchmarkRingVsPathORAM compares the two functional ORAM baselines' bus
// bandwidth per access (blocks moved), the quantity behind the paper's
// 24x-vs-120x citation.
func BenchmarkRingVsPathORAM(b *testing.B) {
	b.Run("path", func(b *testing.B) {
		var bw float64
		for i := 0; i < b.N; i++ {
			o, err := obfusmem.NewPathORAM(obfusmem.PathORAMConfig{
				Levels: 12, Z: 4, StashCapacity: 600, BlockBytes: 64}, 8000, 1)
			if err != nil {
				b.Fatal(err)
			}
			for a := 0; a < 3000; a++ {
				o.Access(obfusmem.ORAMRead, a%8000, nil)
			}
			st := o.Stats()
			bw = float64(st.BlocksRead+st.BlocksWritten) / 3000
		}
		b.ReportMetric(bw, "blocks/access")
	})
	b.Run("ring", func(b *testing.B) {
		var bw float64
		for i := 0; i < b.N; i++ {
			o, err := obfusmem.NewRingORAM(obfusmem.RingORAMConfig{
				Levels: 12, Z: 4, S: 6, A: 3, StashCapacity: 600, BlockBytes: 64}, 8000, 1)
			if err != nil {
				b.Fatal(err)
			}
			for a := 0; a < 3000; a++ {
				o.Access(obfusmem.ORAMRead, a%8000, nil)
			}
			st := o.Stats()
			bw = float64(st.BlocksRead+st.BlocksWritten) / 3000
		}
		b.ReportMetric(bw, "blocks/access")
	})
}

// BenchmarkMemoryTechnology compares ObfusMem+Auth overhead on the paper's
// PCM against a DRAM main memory (refresh, symmetric timing): the paper's
// NVM-centric arguments (dummy dropping, wear) matter most on PCM, but the
// obfuscation itself is technology-agnostic.
func BenchmarkMemoryTechnology(b *testing.B) {
	for _, dram := range []bool{false, true} {
		name := "pcm"
		if dram {
			name = "dram"
		}
		b.Run(name, func(b *testing.B) {
			var overhead float64
			for i := 0; i < b.N; i++ {
				base, err := obfusmem.NewMachine(obfusmem.MachineConfig{
					Protection: obfusmem.ProtectionNone, DRAM: dram, Seed: 9})
				if err != nil {
					b.Fatal(err)
				}
				prot, err := obfusmem.NewMachine(obfusmem.MachineConfig{
					Protection: obfusmem.ProtectionObfusMemAuth, DRAM: dram, Seed: 9})
				if err != nil {
					b.Fatal(err)
				}
				rb, _ := base.RunBenchmark("milc", 3000)
				rp, _ := prot.RunBenchmark("milc", 3000)
				overhead = obfusmem.Overhead(rb, rp)
			}
			b.ReportMetric(overhead, "overhead-%")
		})
	}
}
