package obfusmem

import (
	"obfusmem/internal/cpu"
	"obfusmem/internal/exp"
	"obfusmem/internal/stats"
)

// ExperimentOptions scales the paper-reproduction harness.
type ExperimentOptions struct {
	// Requests per benchmark per configuration (default 8000).
	Requests int
	Seed     uint64
	// Exposure is the fraction of read latency reaching execution time
	// (default 0.55, the calibration in DESIGN.md).
	Exposure float64
	// Serial disables parallel benchmark execution.
	Serial bool
	// Workers bounds the benchmark worker pool when running in parallel;
	// 0 means one worker per available CPU (runtime.GOMAXPROCS).
	Workers int
}

func (o ExperimentOptions) internal() exp.Options {
	io := exp.DefaultOptions()
	if o.Requests > 0 {
		io.Requests = o.Requests
	}
	if o.Seed != 0 {
		io.Seed = o.Seed
	}
	if o.Exposure > 0 {
		io.CPU = cpu.Config{Exposure: o.Exposure, WriteBuffer: 16}
	}
	io.Parallel = !o.Serial
	io.Workers = o.Workers
	return io
}

// ResultTable is a formatted experiment result; String() renders it
// aligned, CSV() renders comma-separated values.
type ResultTable = stats.Table

// Experiment entry points — one per table/figure of the paper's
// evaluation. Each returns the regenerated rows next to the published
// reference values.
var _ = exp.DefaultOptions // keep the package linked even if only some entry points are used

// Table1 regenerates "Table 1: Characteristics of the evaluated
// benchmarks" (measured vs paper).
func Table1(o ExperimentOptions) *ResultTable { return exp.Table1(o.internal()) }

// Table2 dumps "Table 2: Configuration of the simulated system".
func Table2() *ResultTable { return exp.Table2() }

// Table3 regenerates "Table 3: Execution time overhead comparison of ORAM
// vs. ObfusMem".
func Table3(o ExperimentOptions) *ResultTable { return exp.Table3(o.internal()) }

// Figure4 regenerates "Figure 4: The execution time overhead of ObfusMem,
// normalized to unprotected system".
func Figure4(o ExperimentOptions) *ResultTable { return exp.Figure4(o.internal()) }

// Figure5 regenerates "Figure 5: The impact of the number of channels on
// ObfusMem performance".
func Figure5(o ExperimentOptions) *ResultTable { return exp.Figure5(o.internal()) }

// Energy regenerates the Section 5.2 energy and lifetime analysis.
func Energy(o ExperimentOptions) *ResultTable { return exp.Energy(o.internal()) }

// Table4 regenerates "Table 4: Comparing ORAM and ObfusMem" with measured
// evidence.
func Table4(o ExperimentOptions) *ResultTable { return exp.Table4(o.internal()) }

// Tampering regenerates the Section 3.5 active-attack scenarios.
func Tampering(o ExperimentOptions) *ResultTable { return exp.Tampering(o.internal()) }

// TimingObliviousStudy evaluates the Section 6.2 timing-side-channel
// extension: leakage before/after and its execution/PCM cost.
func TimingObliviousStudy(o ExperimentOptions) *ResultTable { return exp.TimingOblivious(o.internal()) }
