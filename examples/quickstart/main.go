// Quickstart: build one machine per protection level, run the same
// memory-intensive SPEC 2006 profile on each, and print the execution-time
// comparison that motivates the paper — ObfusMem obfuscates the access
// pattern for ~10% where ORAM costs ~10x.
package main

import (
	"fmt"
	"log"

	"obfusmem"
)

func main() {
	const bench = "mcf"
	const requests = 8000

	levels := []obfusmem.Protection{
		obfusmem.ProtectionNone,
		obfusmem.ProtectionEncrypt,
		obfusmem.ProtectionObfusMem,
		obfusmem.ProtectionObfusMemAuth,
		obfusmem.ProtectionORAM,
	}

	fmt.Printf("workload %s, %d memory requests per machine\n\n", bench, requests)
	fmt.Printf("%-16s %12s %8s %12s %10s\n", "protection", "exec time", "IPC", "mean read", "overhead")

	var base obfusmem.Result
	for i, p := range levels {
		m, err := obfusmem.NewMachine(obfusmem.MachineConfig{Protection: p, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		res, err := m.RunBenchmark(bench, requests)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			base = res
		}
		fmt.Printf("%-16s %12v %8.2f %9.0f ns %9.1f%%\n",
			p, res.ExecTime, res.IPC, res.MeanReadNS, obfusmem.Overhead(base, res))
	}

	// The paper's headline: ObfusMem+Auth vs ORAM.
	mo, _ := obfusmem.NewMachine(obfusmem.MachineConfig{Protection: obfusmem.ProtectionObfusMemAuth, Seed: 1})
	ro, _ := obfusmem.NewMachine(obfusmem.MachineConfig{Protection: obfusmem.ProtectionORAM, Seed: 1})
	a, _ := mo.RunBenchmark(bench, requests)
	b, _ := ro.RunBenchmark(bench, requests)
	fmt.Printf("\nObfusMem+Auth is %.1fx faster than the Path ORAM model on %s\n",
		obfusmem.Speedup(a, b), bench)

	// Dummy traffic bookkeeping: what obfuscation actually cost the memory.
	t := mo.Traffic()
	fmt.Printf("\nObfusMem traffic: %d real reads, %d real writes, %d dummies dropped at memory,\n",
		t.RealReads, t.RealWrites, t.DroppedAtMemory)
	fmt.Printf("%d substituted pairs, %d+%d AES pads (proc+mem), 0 extra PCM writes\n",
		t.SubstitutedPairs, t.PadsProcessor, t.PadsMemory)
}
