// Nvmlifetime: the Section 3.3 dummy-address ablation on a PCM main
// memory. Phase-change cells endure ~1e8 writes, so what a dummy request
// does at the memory decides the device's lifetime:
//
//   - random-address dummies write random rows (wear + lost row locality),
//   - original-address dummies turn every read into a real PCM write,
//   - fixed-address dummies (the paper's design) are dropped on arrival.
package main

import (
	"fmt"
	"log"

	"obfusmem"
)

func run(d obfusmem.DummyDesign, label string) {
	m, err := obfusmem.NewMachine(obfusmem.MachineConfig{
		Protection: obfusmem.ProtectionObfusMem,
		Dummy:      d,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	// bwaves is ~95% demand reads, so nearly every access needs a dummy
	// *write* — the case where the dummy-address design decides NVM fate.
	res, err := m.RunBenchmark("bwaves", 10000)
	if err != nil {
		log.Fatal(err)
	}
	t := m.Traffic()
	lifetimeHours := m.NVMLifetimeYears(res.ExecTime) * 365.25 * 24
	fmt.Printf("%-18s exec %10v | dummy PCM writes %6d reads %6d | array writes %6d | max row wear %4d | energy %.1f uJ | est. lifetime %6.1f h\n",
		label, res.ExecTime, t.DummyPCMWrites, t.DummyPCMReads,
		t.PCMArrayWrites, t.PCMMaxWear, t.PCMEnergyPJ/1e6, lifetimeHours)
}

func main() {
	fmt.Println("dummy-address design ablation (bwaves, 10000 requests, PCM endurance 1e8 writes/cell)")
	fmt.Println()
	run(obfusmem.RandomAddress, "random-address")
	run(obfusmem.OriginalAddress, "original-address")
	run(obfusmem.FixedAddress, "fixed-address")
	fmt.Println()
	fmt.Println("fixed-address dummies are dropped at the memory-side controller before")
	fmt.Println("touching PCM (Observation 2): zero extra wear, zero extra write energy,")
	fmt.Println("which is why the paper reserves one 64-byte block per module as the dummy.")
}
