// Securechannel: walk through the ObfusMem trust architecture of Section
// 3.1 — the three trust-bootstrapping approaches under different threat
// settings — then demonstrate the Section 3.5 communication authentication
// against an active bus attacker.
package main

import (
	"fmt"
	"log"

	"obfusmem"
)

func boot(label string, s obfusmem.BootScenario) {
	rep := obfusmem.SimulateBoot(s)
	switch {
	case rep.Err != nil:
		fmt.Printf("%-58s HALTED: %v\n", label, rep.Err)
	case rep.Compromised:
		fmt.Printf("%-58s ESTABLISHED but COMPROMISED (attacker holds the key!)\n", label)
	default:
		fmt.Printf("%-58s established securely\n", label)
	}
}

func main() {
	fmt.Println("== Section 3.1: trust bootstrapping ==")
	boot("naive, clean boot:", obfusmem.BootScenario{
		Approach: obfusmem.BootNaive, HonestIntegrator: true, MemoryObfusCapable: true, Seed: 1})
	boot("naive, boot-time MITM:", obfusmem.BootScenario{
		Approach: obfusmem.BootNaive, HonestIntegrator: true, MemoryObfusCapable: true,
		BootTimeMITM: true, Seed: 2})
	boot("trusted integrator, boot-time MITM:", obfusmem.BootScenario{
		Approach: obfusmem.BootTrustedIntegrator, HonestIntegrator: true,
		MemoryObfusCapable: true, BootTimeMITM: true, Seed: 3})
	boot("untrusted integrator burned wrong keys:", obfusmem.BootScenario{
		Approach: obfusmem.BootUntrustedIntegrator, HonestIntegrator: false,
		MemoryObfusCapable: true, Seed: 4})
	boot("untrusted integrator, non-ObfusMem memory chip:", obfusmem.BootScenario{
		Approach: obfusmem.BootUntrustedIntegrator, HonestIntegrator: true,
		MemoryObfusCapable: false, Seed: 5})
	boot("untrusted integrator, everything genuine:", obfusmem.BootScenario{
		Approach: obfusmem.BootUntrustedIntegrator, HonestIntegrator: true,
		MemoryObfusCapable: true, Seed: 6})

	fmt.Println("\n== Section 3.5: communication authentication under attack ==")
	attacks := []struct {
		kind obfusmem.TamperKind
		note string
	}{
		{obfusmem.TamperModify, "bit-flips in encrypted commands"},
		{obfusmem.TamperDrop, "deleting requests in flight"},
		{obfusmem.TamperReplay, "replaying old valid requests"},
		{obfusmem.TamperMAC, "corrupting the MAC field"},
		{obfusmem.TamperData, "corrupting data payloads (bus MAC does not cover data)"},
	}
	for _, a := range attacks {
		m, err := obfusmem.NewMachine(obfusmem.MachineConfig{
			Protection: obfusmem.ProtectionObfusMemAuth, FullHandshake: true, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		tmp := m.AttachTamperer(a.kind, 5)
		if _, err := m.RunBenchmark("lbm", 2000); err != nil {
			log.Fatal(err)
		}
		ev := m.SecurityEvents()
		fmt.Printf("%-14s mounted %4d, detected %4d  (%s)\n",
			a.kind, tmp.Attacked, ev.TamperDetected, a.note)
	}
	fmt.Println("\ndata corruption is caught by the Merkle integrity tree when the block is next read (Observation 4)")
}
