// Secretstore: the value-carrying datapath end to end. A small key-value
// store keeps its records in ObfusMem-protected memory; we show that (1)
// data round-trips correctly through at-rest + transit encryption, (2) the
// memory module holds only ciphertext, (3) a bus observer learns nothing
// about which record is hot, and (4) Observation 4 plays out exactly as
// the paper describes: in-flight data corruption passes the bus MAC but is
// caught by the Merkle integrity tree on the next read.
package main

import (
	"fmt"
	"log"

	"obfusmem"
)

func mkBlock(s string) obfusmem.Block {
	var b obfusmem.Block
	copy(b[:], s)
	return b
}

func main() {
	m, err := obfusmem.NewMachine(obfusmem.MachineConfig{
		Protection: obfusmem.ProtectionObfusMemAuth, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	obs := m.AttachObserver(1 << 20)

	// A tiny record store: key i lives at block i.
	records := []string{
		"alice: salary=120000",
		"bob: salary=95000",
		"carol: diagnosis=confidential",
		"dave: pin=4242",
	}
	var at obfusmem.Time
	for i, r := range records {
		at = m.WriteBlock(at, uint64(i)*64, mkBlock(r))
	}

	// Hammer one hot record (the access pattern a real attacker wants).
	for i := 0; i < 200; i++ {
		_, done, _ := m.ReadBlock(at, 2*64) // carol, 200 times
		at = done
	}

	// 1. Round trip.
	got, done, verified := m.ReadBlock(at, 2*64)
	at = done
	fmt.Printf("read back: %q (verified=%v)\n", string(got[:30]), verified)

	// 2. What sits in the memory chips.
	fmt.Printf("\nwhat a memory readout attack sees (block 2): not %q\n", records[2][:20])
	fmt.Println("   (ciphertext at rest; see TestValueDataInMemoryIsCiphertext)")

	// 3. What the bus observer learned.
	fmt.Printf("\nbus observer after %d packets:\n", obs.Packets())
	fmt.Printf("  ciphertext repeats:  %.4f  (cannot see that one record is hot)\n", obs.TemporalLeakage())
	fmt.Printf("  footprint estimate:  %d vs true 4 records\n", obs.FootprintEstimate())
	fmt.Printf("  dictionary attack:   %.4f recovery\n", obs.DictionaryAttack())

	// 4. Observation 4: corrupt data in flight during a write.
	fmt.Println("\nactive attacker corrupts the data payload of the next write...")
	tmp := m.AttachTamperer(obfusmem.TamperData, 1)
	at = m.WriteBlock(at, 3*64, mkBlock("dave: pin=9999 (update)"))
	ev := m.SecurityEvents()
	fmt.Printf("  bus MAC alarms: %d (encrypt-and-MAC does not cover data — by design)\n", ev.TamperDetected)
	_ = tmp

	m2, _, ok := m.ReadBlock(at, 3*64)
	fmt.Printf("  next read of dave's record: verified=%v (Merkle tree caught it)\n", ok)
	if ok {
		log.Fatal("corruption went undetected!")
	}
	_ = m2
	fmt.Println("\nObservation 4: \"tampering of data that is written to memory will not be")
	fmt.Println("detected until the data is eventually read into the processor chip.\"")
}
