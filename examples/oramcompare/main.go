// Oramcompare: put the two access-pattern defences side by side. A
// functional Path ORAM services a pathological workload (hammering a tiny
// hot set) while we measure what it costs — bandwidth amplification, write
// amplification, storage overhead, stash pressure — and what an observer
// learns (nothing: leaves are uniform). Then the same workload runs on an
// ObfusMem machine with a bus observer attached, showing the same secrecy
// at a fraction of the cost.
package main

import (
	"fmt"
	"log"

	"obfusmem"
)

func main() {
	// --- Functional Path ORAM on a hot-set workload. ---
	cfg := obfusmem.PathORAMConfig{Levels: 10, Z: 4, StashCapacity: 300, BlockBytes: 64}
	po, err := obfusmem.NewPathORAM(cfg, 4000, 1)
	if err != nil {
		log.Fatal(err)
	}
	const accesses = 6000
	for i := 0; i < accesses; i++ {
		blk := i % 16 // tiny hot set: worst case for pattern leakage
		if i%3 == 0 {
			if _, err := po.Access(obfusmem.ORAMWrite, blk, []byte("secret-record!")); err != nil {
				log.Fatal(err)
			}
		} else if _, err := po.Access(obfusmem.ORAMRead, blk, nil); err != nil {
			log.Fatal(err)
		}
	}
	st := po.Stats()
	fmt.Println("== Path ORAM (functional, L=10 Z=4) ==")
	fmt.Printf("accesses:             %d over a hot set of 16 blocks\n", st.Accesses)
	fmt.Printf("blocks read/written:  %d / %d (%d per access — bandwidth amplification)\n",
		st.BlocksRead, st.BlocksWritten, po.PathLength())
	fmt.Printf("write amplification:  %.0fx per access (every access rewrites a path)\n", po.WriteAmplification())
	fmt.Printf("storage overhead:     %.0f%% (dummy blocks for a safe failure rate)\n", po.StorageOverhead()*100)
	fmt.Printf("stash: max %d, mean %.1f, overflows %d\n", st.StashMax, po.MeanStash(), st.Failures)

	// What the observer saw: the leaf trace.
	trace := po.LeafTrace()
	counts := map[int]int{}
	for _, l := range trace {
		counts[l]++
	}
	max, min := 0, 1<<30
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	fmt.Printf("observer's leaf trace: %d distinct leaves touched, min/max frequency %d/%d\n",
		len(counts), min, max)
	fmt.Println("  -> uniform: nothing about the 16-block hot set is visible")

	// --- ObfusMem on the same shape of workload. ---
	fmt.Println("\n== ObfusMem (full machine, bus observer attached) ==")
	m, err := obfusmem.NewMachine(obfusmem.MachineConfig{
		Protection: obfusmem.ProtectionObfusMemAuth, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	obs := m.AttachObserver(1 << 20)
	var at obfusmem.Time
	for i := 0; i < accesses; i++ {
		addr := uint64(i%16) * 64 // the same 16-block hot set
		if i%3 == 0 {
			m.Write(at, addr)
			at += 100_000 // 100ns in picoseconds
		} else {
			at = m.Read(at, addr)
		}
	}
	m.Drain(at)
	fmt.Printf("packets observed:       %d\n", obs.Packets())
	fmt.Printf("ciphertext repeats:     %.4f (temporal pattern: hidden)\n", obs.TemporalLeakage())
	fmt.Printf("footprint estimate:     %d vs true %d (footprint: hidden)\n",
		obs.FootprintEstimate(), obs.TrueFootprint())
	fmt.Printf("dictionary attack:      %.4f recovery (spatial pattern: hidden)\n", obs.DictionaryAttack())

	t := m.Traffic()
	fmt.Printf("cost: %d dummy requests dropped at memory, %d extra PCM writes, %d bus bytes\n",
		t.DroppedAtMemory, 0, t.BusBytes)
	fmt.Println("\nsame obfuscation guarantees; no reshuffling, no write amplification, no stash")
}
