# Build/verify targets for the ObfusMem reproduction.
#
#   make check   - tier-1 verify: build + full test suite
#   make vet     - static analysis
#   make race    - full test suite under the race detector (runSuite's
#                  parallel fan-out, the shared metrics registry, and every
#                  concurrent test path)
#   make bench   - the evaluation benchmark harness (also refreshes the
#                  BENCH_*.json perf-trajectory snapshot via TestEmitBenchTrajectory)
#   make ci      - everything CI runs: vet + check + race

GO ?= go

.PHONY: check vet race bench ci

check:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run TestEmitBenchTrajectory -bench . -benchmem .

ci: vet check race
