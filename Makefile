# Build/verify targets for the ObfusMem reproduction.
#
#   make check   - tier-1 verify: build + full test suite
#   make vet     - static analysis
#   make race    - test suite under the race detector in -short mode
#                  (runSuite's parallel fan-out, the shared metrics registry,
#                  and every concurrent test path; -short keeps CI runtime
#                  bounded and skips wall-clock assertions that race
#                  instrumentation would distort)
#   make race-full - the complete suite under the race detector
#   make race-shards - the shard-synchronization paths (internal/sim,
#                  internal/bus) under the race detector WITHOUT -short:
#                  the conservative-lookahead worker loops, mailbox rings,
#                  and termination protocol, including the long engine
#                  tests that make race skips (runs in CI)
#   make bench   - the evaluation benchmark harness (also refreshes the
#                  BENCH_*.json perf-trajectory snapshot via TestEmitBenchTrajectory)
#   make bench-smoke - fast perf gate: the zero-alloc guards plus short
#                  benchmarks of the event engine and the obfus datapath;
#                  fails if the alloc guards regress (runs in CI)
#   make campaign-smoke - end-to-end crash/resume gate: runs a small real
#                  campaign, SIGKILLs it mid-grid, resumes, and fails unless
#                  the merged results are byte-identical to an uninterrupted
#                  run (runs in CI; see EXPERIMENTS.md "Running campaigns")
#   make profile - full-suite run with pprof CPU + heap profiles written to
#                  cpu.pprof / mem.pprof (see EXPERIMENTS.md "Profiling and
#                  benchmarking" for how to read them)
#   make lint    - obfuslint: the repo's own analyzer suite (determinism,
#                  hotpath, eventref, metricnames; see DESIGN.md
#                  "Machine-checked invariants"), plus golangci-lint and
#                  govulncheck when installed (both skipped, not failed,
#                  when absent so the frozen toolchain image still lints)
#   make lint-fix - gofmt the tree, then re-lint
#   make ci      - everything CI runs: lint + vet + check + race + bench-smoke
#   make trace-demo - traced run of the milc profile: Chrome trace JSON
#                  (load trace.json in Perfetto), attribution report, and
#                  a 5us metrics time series (see EXPERIMENTS.md "Tracing
#                  a run")

GO ?= go

.PHONY: check vet lint lint-fix race race-full race-shards bench bench-smoke campaign-smoke profile ci trace-demo

check:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) build ./...
	$(GO) run ./cmd/obfuslint ./...
	@if command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run; \
	else \
		echo "lint: golangci-lint not installed; skipping (CI installs it)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed; skipping (CI installs it)"; \
	fi

lint-fix:
	gofmt -w $$(git ls-files '*.go' | grep -v testdata)
	$(MAKE) lint

race:
	$(GO) test -race -short ./...

race-full:
	$(GO) test -race ./...

race-shards:
	$(GO) test -race -count=1 ./internal/sim/... ./internal/bus/...

bench:
	$(GO) test -run TestEmitBenchTrajectory -bench . -benchmem .

bench-smoke:
	$(GO) test -run 'TestScheduleFireRecycleZeroAllocs|TestReadWriteLegZeroAllocs' \
		-bench 'BenchmarkEngineChurn|BenchmarkBaselineChurn|BenchmarkReadWriteLeg' \
		-benchtime 200ms -benchmem ./internal/sim ./internal/obfus
	$(GO) test -run 'TestHotPathZeroAllocs|TestNoSilentlyLostRequests' ./internal/backend
	$(GO) run ./cmd/obfsim -exp backends -requests 1500 > /dev/null
	$(GO) run ./cmd/obfsim -exp leakage -requests 1500 > /dev/null
	@echo "bench-smoke: sharded-engine byte-identity (shards=1 vs shards=8)"
	@$(GO) run ./cmd/obfsim -exp openloop -requests 800 -shards 1 > .openloop_s1.txt 2>/dev/null; \
	$(GO) run ./cmd/obfsim -exp openloop -requests 800 -shards 8 > .openloop_s8.txt 2>/dev/null; \
	if cmp -s .openloop_s1.txt .openloop_s8.txt; then \
		echo "bench-smoke: shards=1 and shards=8 byte-identical"; rm -f .openloop_s1.txt .openloop_s8.txt; \
	else \
		echo "bench-smoke: SHARD DETERMINISM VIOLATION (outputs differ)"; diff .openloop_s1.txt .openloop_s8.txt; exit 1; \
	fi
	$(MAKE) campaign-smoke

campaign-smoke:
	sh scripts/campaign_smoke.sh

profile:
	$(GO) run ./cmd/obfsim -exp all -requests 5000 \
		-cpuprofile cpu.pprof -memprofile mem.pprof > /dev/null
	@echo "profiles written; inspect with: $(GO) tool pprof -top cpu.pprof"

ci: lint vet check race bench-smoke campaign-smoke

trace-demo:
	$(GO) run ./cmd/obfsim -exp none -requests 4000 \
		-trace-out trace.json -attrib-out attrib.json \
		-sample-every 5 -sample-out samples.csv
