# Build/verify targets for the ObfusMem reproduction.
#
#   make check   - tier-1 verify: build + full test suite
#   make vet     - static analysis
#   make race    - test suite under the race detector in -short mode
#                  (runSuite's parallel fan-out, the shared metrics registry,
#                  and every concurrent test path; -short keeps CI runtime
#                  bounded and skips wall-clock assertions that race
#                  instrumentation would distort)
#   make race-full - the complete suite under the race detector
#   make bench   - the evaluation benchmark harness (also refreshes the
#                  BENCH_*.json perf-trajectory snapshot via TestEmitBenchTrajectory)
#   make ci      - everything CI runs: vet + check + race
#   make trace-demo - traced run of the milc profile: Chrome trace JSON
#                  (load trace.json in Perfetto), attribution report, and
#                  a 5us metrics time series (see EXPERIMENTS.md "Tracing
#                  a run")

GO ?= go

.PHONY: check vet race race-full bench ci trace-demo

check:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -short ./...

race-full:
	$(GO) test -race ./...

bench:
	$(GO) test -run TestEmitBenchTrajectory -bench . -benchmem .

ci: vet check race

trace-demo:
	$(GO) run ./cmd/obfsim -exp none -requests 4000 \
		-trace-out trace.json -attrib-out attrib.json \
		-sample-every 5 -sample-out samples.csv
