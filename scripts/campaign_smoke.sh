#!/bin/sh
# Campaign crash/resume smoke: run a real campaign, SIGKILL it mid-grid,
# resume it, and verify the merged artifact is byte-identical to an
# uninterrupted run. This is the end-to-end check of the journal's
# durability contract (see EXPERIMENTS.md "Running campaigns").
set -eu

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

go build -o "$work/obfsim" ./cmd/obfsim

cat > "$work/manifest.json" <<'EOF'
{
  "name": "smoke",
  "requests": 4000,
  "schemes": ["unprotected", "obfusmem", "obfusmem-auth"],
  "workloads": ["milc", "mcf", "lbm"],
  "faultRates": [0, 0.001],
  "seeds": [1]
}
EOF

# Reference: uninterrupted run.
"$work/obfsim" -campaign "$work/manifest.json" -campaign-out "$work/ref" \
    > /dev/null 2>&1

# Crashing run: start it, wait until a few cells are durably journaled,
# then SIGKILL — the hardest crash there is.
"$work/obfsim" -campaign "$work/manifest.json" -campaign-out "$work/crash" \
    > /dev/null 2>&1 &
pid=$!
journal_lines() {
    if [ -f "$work/crash/journal.obfj" ]; then
        wc -l < "$work/crash/journal.obfj"
    else
        echo 0
    fi
}
i=0
while [ "$(journal_lines)" -lt 4 ]; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "campaign-smoke: campaign never journaled any cells" >&2
        kill -9 "$pid" 2>/dev/null || true
        exit 1
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
        # Finished before we could kill it: the machine is too fast for this
        # grid, but resume-from-complete is still exercised below.
        break
    fi
    sleep 0.05
done
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

if [ -f "$work/crash/results.json" ] && ! cmp -s "$work/ref/results.json" "$work/crash/results.json"; then
    echo "campaign-smoke: pre-kill results differ from reference" >&2
    exit 1
fi

# Resume: must finish the grid from the journal and merge to the exact
# bytes of the uninterrupted run.
"$work/obfsim" -campaign "$work/manifest.json" -campaign-out "$work/crash" \
    > "$work/resume-summary.json" 2> "$work/resume-stderr.txt"

if ! cmp -s "$work/ref/results.json" "$work/crash/results.json"; then
    echo "campaign-smoke: resumed results differ from the uninterrupted run" >&2
    diff "$work/ref/results.json" "$work/crash/results.json" | head >&2 || true
    exit 1
fi

echo "campaign-smoke: OK (kill -9 mid-grid, resumed, merged bytes identical)"
