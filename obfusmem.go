// Package obfusmem is a from-scratch reproduction of "ObfusMem: A
// Low-Overhead Access Obfuscation for Trusted Memories" (Awad, Wang,
// Shands, Solihin — ISCA 2017).
//
// It provides:
//
//   - a complete simulated machine (out-of-order cores → MESI cache
//     hierarchy → memory bus → PCM main memory) with four protection
//     levels: unprotected, counter-mode memory encryption, ObfusMem (the
//     paper's contribution, in all its design variants), and a Path ORAM
//     baseline (both a functional implementation and the paper's
//     fixed-latency performance model);
//   - the trust architecture of Section 3.1 (manufacturer-certified
//     component keys, integrator key burning, attestation, Diffie-Hellman
//     session establishment);
//   - attacker models (passive bus observers, active tamperers) used by
//     the security analysis; and
//   - an experiment harness that regenerates every table and figure of
//     the paper's evaluation.
//
// Quick start:
//
//	m, _ := obfusmem.NewMachine(obfusmem.MachineConfig{Protection: obfusmem.ProtectionObfusMemAuth})
//	res, _ := m.RunBenchmark("mcf", 10000)
//	fmt.Printf("mcf ran %v simulated, IPC %.2f\n", res.ExecTime, res.IPC)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record.
package obfusmem

import (
	"fmt"
	"io"

	"obfusmem/internal/attack"
	"obfusmem/internal/cache"
	"obfusmem/internal/cpu"
	"obfusmem/internal/obfus"
	"obfusmem/internal/sim"
	"obfusmem/internal/system"
	"obfusmem/internal/workload"
	"obfusmem/internal/xrand"
)

// Protection selects the machine's protection level.
type Protection int

// Protection levels, in increasing order of security.
const (
	// ProtectionNone is the unprotected baseline: plaintext commands,
	// addresses, and data on the memory bus.
	ProtectionNone Protection = iota
	// ProtectionEncrypt adds counter-mode memory encryption (data at rest
	// and in transit is ciphertext; addresses and commands are plain).
	ProtectionEncrypt
	// ProtectionObfusMem adds ObfusMem access-pattern obfuscation on top
	// of memory encryption (no bus authentication).
	ProtectionObfusMem
	// ProtectionObfusMemAuth is ObfusMem plus encrypt-and-MAC
	// communication authentication — the paper's full design.
	ProtectionObfusMemAuth
	// ProtectionORAM replaces ObfusMem with the paper's optimistic Path
	// ORAM performance model.
	ProtectionORAM
	// ProtectionPalermo replaces ObfusMem with the Palermo
	// protocol/hardware co-designed oblivious memory (arXiv 2411.05400):
	// batched oblivious accesses with cover-block path reads and deferred
	// eviction writebacks.
	ProtectionPalermo
)

func (p Protection) String() string {
	switch p {
	case ProtectionNone:
		return "none"
	case ProtectionEncrypt:
		return "encrypt-only"
	case ProtectionObfusMem:
		return "obfusmem"
	case ProtectionObfusMemAuth:
		return "obfusmem+auth"
	case ProtectionORAM:
		return "oram"
	case ProtectionPalermo:
		return "palermo"
	default:
		return fmt.Sprintf("Protection(%d)", int(p))
	}
}

// Re-exported ObfusMem design knobs (see the paper's Section 3).
type (
	// DummyDesign selects dummy-request addressing (Section 3.3).
	DummyDesign = obfus.DummyDesign
	// ChannelPolicy selects inter-channel obfuscation (Section 3.4).
	ChannelPolicy = obfus.ChannelPolicy
	// MACMode selects communication authentication (Section 3.5).
	MACMode = obfus.MACMode
	// PairOrder selects which half of a request pair leads (Section 3.3).
	PairOrder = obfus.PairOrder
)

// Re-exported design-knob values.
const (
	FixedAddress    = obfus.FixedAddress
	OriginalAddress = obfus.OriginalAddress
	RandomAddress   = obfus.RandomAddress

	PolicyNone  = obfus.PolicyNone
	PolicyUNOPT = obfus.PolicyUNOPT
	PolicyOPT   = obfus.PolicyOPT

	MACNone        = obfus.MACNone
	EncryptAndMAC  = obfus.EncryptAndMAC
	EncryptThenMAC = obfus.EncryptThenMAC

	ReadThenWrite = obfus.ReadThenWrite
	WriteThenRead = obfus.WriteThenRead
)

// Time re-exports the simulator timestamp (picoseconds).
type Time = sim.Time

// MachineConfig describes a machine to build.
type MachineConfig struct {
	Protection Protection
	// Channels is the memory channel count (1, 2, 4, or 8; default 1).
	Channels int
	// Dummy, Policy, Order tune ObfusMem (ignored otherwise). Zero values
	// are the paper's choices (fixed-address dummies; OPT applies only
	// with >1 channel).
	Dummy  DummyDesign
	Policy ChannelPolicy
	Order  PairOrder
	// Symmetric selects the same-size-request alternative of Section 3.3.
	Symmetric bool
	// MAC overrides the authentication mode (ablation use); zero value
	// defers to the Protection level (ObfusMemAuth => encrypt-and-MAC).
	MAC MACMode
	// TimingOblivious enables the Section 6.2 extension: fixed-cadence
	// request issue, undropped dummies, and worst-case reply padding,
	// closing the timing side channel at a measurable cost.
	TimingOblivious bool
	// IntegrityTree enables Bonsai Merkle verification traffic in the
	// protected modes (the paper's baseline secure processor assumes a
	// Merkle tree; Section 2.1).
	IntegrityTree bool
	// DRAM selects a DRAM main memory (refresh, symmetric timing, no
	// wear) instead of the paper's PCM.
	DRAM bool
	// WearLevel enables Start-Gap wear levelling inside the memory module
	// (one of the Section 2.2 smart-NVM logic functions); composes with
	// any protection level since it lives behind the memory-side
	// controller.
	WearLevel bool
	// FullHandshake runs the complete Section 3.1 trust bootstrap
	// (manufacturer certs, integrator burning, signed Diffie-Hellman) at
	// construction instead of seeding session keys directly.
	FullHandshake bool
	Seed          uint64
}

// Result is the outcome of a benchmark run.
type Result = cpu.Result

// Machine is an assembled simulated system.
type Machine struct {
	sys  *system.System
	cfg  MachineConfig
	core cpu.Config
}

// NewMachine builds a machine.
func NewMachine(cfg MachineConfig) (*Machine, error) {
	if cfg.Channels == 0 {
		cfg.Channels = 1
	}
	if cfg.Channels < 1 || cfg.Channels > 8 || cfg.Channels&(cfg.Channels-1) != 0 {
		return nil, fmt.Errorf("obfusmem: channels must be 1, 2, 4, or 8 (got %d)", cfg.Channels)
	}
	sc := system.Config{Channels: cfg.Channels, Seed: cfg.Seed, FullHandshake: cfg.FullHandshake,
		IntegrityTree: cfg.IntegrityTree, WearLevel: cfg.WearLevel, DRAM: cfg.DRAM}
	switch cfg.Protection {
	case ProtectionNone:
		sc.Mode = system.Unprotected
	case ProtectionEncrypt:
		sc.Mode = system.EncryptOnly
	case ProtectionObfusMem, ProtectionObfusMemAuth:
		sc.Mode = system.ObfusMem
		oc := obfus.Default()
		oc.Dummy = cfg.Dummy
		oc.Order = cfg.Order
		oc.Symmetric = cfg.Symmetric
		oc.TimingOblivious = cfg.TimingOblivious
		if cfg.Policy != obfus.PolicyNone {
			oc.Policy = cfg.Policy
		}
		if cfg.Protection == ProtectionObfusMemAuth {
			oc.MAC = obfus.EncryptAndMAC
		}
		if cfg.MAC != obfus.MACNone {
			oc.MAC = cfg.MAC
		}
		sc.Obfus = oc
	case ProtectionORAM:
		sc.Mode = system.ORAM
	case ProtectionPalermo:
		sc.Mode = system.Palermo
	default:
		return nil, fmt.Errorf("obfusmem: unknown protection %v", cfg.Protection)
	}
	return &Machine{sys: system.New(sc), cfg: cfg, core: cpu.DefaultConfig()}, nil
}

// Benchmarks lists the SPEC CPU2006 workload profiles of Table 1.
func Benchmarks() []string {
	ps := workload.SPEC2006()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// RunBenchmark drives the named Table 1 workload for n memory requests and
// returns execution statistics.
func (m *Machine) RunBenchmark(name string, n int) (Result, error) {
	p, err := workload.ByName(name)
	if err != nil {
		return Result{}, err
	}
	if n <= 0 {
		return Result{}, fmt.Errorf("obfusmem: request count must be positive")
	}
	return cpu.Run(p, n, m.sys, m.core, m.cfg.Seed+1), nil
}

// TraceRequest is one post-LLC memory request in a recorded trace.
type TraceRequest = workload.Request

// GenerateTrace materialises n requests of a named Table 1 profile.
func GenerateTrace(benchmark string, n int, seed uint64) ([]TraceRequest, error) {
	p, err := workload.ByName(benchmark)
	if err != nil {
		return nil, err
	}
	return workload.Generate(p, n, seed), nil
}

// ReadTrace parses the CSV trace format of cmd/tracegen.
func ReadTrace(r io.Reader) ([]TraceRequest, error) { return workload.ReadTrace(r) }

// WriteTrace serialises a trace in the cmd/tracegen CSV format.
func WriteTrace(w io.Writer, reqs []TraceRequest) error { return workload.WriteTrace(w, reqs) }

// ReplayTrace drives a recorded request sequence through this machine.
func (m *Machine) ReplayTrace(name string, reqs []TraceRequest) Result {
	return cpu.RunTrace(name, reqs, m.sys, m.core)
}

// HierarchyWorkload parameterises the full-hierarchy drive mode: synthetic
// per-core instruction streams through the real MESI L1/L2/L3 hierarchy,
// with LLC misses and writebacks arising organically.
type HierarchyWorkload = cpu.HierarchyWorkload

// HierarchyResult summarises a full-hierarchy run.
type HierarchyResult = cpu.HierarchyResult

// DefaultHierarchyWorkload returns a 4-core mixed workload.
func DefaultHierarchyWorkload() HierarchyWorkload { return cpu.DefaultHierarchyWorkload() }

// RunHierarchy drives nPerCore instructions per core through a fresh cache
// hierarchy into this machine's memory system.
func (m *Machine) RunHierarchy(w HierarchyWorkload, nPerCore int) HierarchyResult {
	h := cache.NewHierarchy(w.Cores)
	return cpu.RunHierarchy(w, nPerCore, h, m.sys, m.core, m.cfg.Seed+11)
}

// Read issues a single demand read at simulated time `at`, returning the
// data-ready time. Useful for custom traffic instead of RunBenchmark.
func (m *Machine) Read(at Time, addr uint64) Time { return m.sys.Read(at, addr) }

// Write posts a single writeback at simulated time `at`.
func (m *Machine) Write(at Time, addr uint64) Time { return m.sys.Write(at, addr) }

// Drain flushes buffered state (pending write pairs, open PCM rows).
func (m *Machine) Drain(at Time) { m.sys.Drain(at) }

// Block is a 64-byte memory line for the value-carrying datapath.
type Block = system.Block

// WriteBlock writes real bytes through the machine's full datapath:
// counter-mode at-rest encryption, transit encryption on the bus (under
// ObfusMem), functional storage in the memory module, and a Merkle-tree
// update. Returns the write's retirement time.
func (m *Machine) WriteBlock(at Time, addr uint64, data Block) Time {
	return m.sys.WriteData(at, addr, data)
}

// ReadBlock reads bytes back through the full datapath. verified is false
// if integrity verification failed — including the Observation 4 case
// where in-flight data corruption sailed past the bus MAC and is caught by
// the Merkle tree on this read.
func (m *Machine) ReadBlock(at Time, addr uint64) (data Block, done Time, verified bool) {
	return m.sys.ReadData(at, addr)
}

// Observer is a passive bus attacker (re-export of the attack model).
type Observer = attack.Observer

// AttachObserver taps the machine's memory bus with a passive attacker
// retaining up to limit packets, and returns it for later analysis.
func (m *Machine) AttachObserver(limit int) *Observer {
	o := attack.NewObserver(m.cfg.Channels, limit)
	m.sys.Bus().AttachObserver(o)
	return o
}

// TamperKind re-exports the active-attack menu.
type TamperKind = attack.TamperKind

// Active attacks (Section 3.5 scenarios).
const (
	TamperModify = attack.TamperModify
	TamperDrop   = attack.TamperDrop
	TamperReplay = attack.TamperReplay
	TamperMAC    = attack.TamperMAC
	TamperData   = attack.TamperData
)

// Tamperer is an active in-flight attacker.
type Tamperer = attack.Tamperer

// AttachTamperer installs an active attacker on the bus that attacks every
// Nth eligible packet, and returns it.
func (m *Machine) AttachTamperer(kind TamperKind, everyN int) *Tamperer {
	t := attack.NewTamperer(kind, everyN, xrand.New(m.cfg.Seed^0x7a3))
	m.sys.Bus().SetTamperer(t)
	return t
}

// SecurityEvents summarises what the machine's defences saw.
type SecurityEvents struct {
	TamperDetected  uint64
	RequestsLost    uint64
	SilentCorrupted uint64 // decode mismatches with no MAC to catch them
}

// SecurityEvents reports detection counters (zero-valued for machines
// without an ObfusMem controller).
func (m *Machine) SecurityEvents() SecurityEvents {
	obf := m.sys.Obfus()
	if obf == nil {
		return SecurityEvents{}
	}
	st := obf.Stats()
	return SecurityEvents{
		TamperDetected:  st.TamperDetected,
		RequestsLost:    st.RequestsLost,
		SilentCorrupted: st.DecodeMismatches,
	}
}

// TrafficStats summarises bus-level behaviour of the run so far.
type TrafficStats struct {
	RealReads         uint64
	RealWrites        uint64
	DummyReads        uint64
	DummyWrites       uint64
	InterChannelPairs uint64
	SubstitutedPairs  uint64
	DroppedAtMemory   uint64
	DummyPCMReads     uint64 // original/random dummy designs only
	DummyPCMWrites    uint64
	PadsProcessor     uint64
	PadsMemory        uint64
	BusBytes          uint64
	PCMArrayWrites    uint64
	PCMMaxWear        uint64 // highest per-row array-write count
	PCMEnergyPJ       float64
	CryptoEnergyPJ    float64
}

// Traffic reports traffic and energy counters.
func (m *Machine) Traffic() TrafficStats {
	ts := TrafficStats{BusBytes: m.sys.Bus().TotalBytes()}
	ps := m.sys.Memory().TotalPCMStats()
	ts.PCMArrayWrites = ps.ArrayWrites
	ts.PCMEnergyPJ = ps.EnergyPJ
	for ch := 0; ch < m.cfg.Channels; ch++ {
		if w := m.sys.Memory().Device(ch).MaxWear(); w > ts.PCMMaxWear {
			ts.PCMMaxWear = w
		}
	}
	if obf := m.sys.Obfus(); obf != nil {
		st := obf.Stats()
		ts.RealReads = st.RealReads
		ts.RealWrites = st.RealWrites
		ts.DummyReads = st.DummyReads
		ts.DummyWrites = st.DummyWrites
		ts.InterChannelPairs = st.InterChannelPairs
		ts.SubstitutedPairs = st.SubstitutedPairs
		ts.DroppedAtMemory = st.DroppedAtMemory
		ts.DummyPCMReads = st.DummyPCMReads
		ts.DummyPCMWrites = st.DummyPCMWrites
		ts.PadsProcessor = obf.PadsProc()
		ts.PadsMemory = obf.PadsMem()
		ts.CryptoEnergyPJ = obf.CryptoEnergyPJ()
	}
	return ts
}

// NVMLifetimeYears estimates device lifetime from the peak per-row wear
// rate observed over a simulated duration (worst channel).
func (m *Machine) NVMLifetimeYears(elapsed Time) float64 {
	worst := 1e12
	for ch := 0; ch < m.cfg.Channels; ch++ {
		if y := m.sys.Memory().Device(ch).LifetimeYears(elapsed); y < worst {
			worst = y
		}
	}
	return worst
}

// Overhead returns (exec-base)/base in percent, comparing two runs.
func Overhead(base, exec Result) float64 { return cpu.Overhead(base, exec) }

// Speedup returns how many times faster a is than b.
func Speedup(a, b Result) float64 { return cpu.Speedup(a, b) }
