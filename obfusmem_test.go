package obfusmem

import (
	"errors"
	"testing"
)

func TestNewMachineValidation(t *testing.T) {
	if _, err := NewMachine(MachineConfig{Channels: 3}); err == nil {
		t.Error("3 channels accepted")
	}
	if _, err := NewMachine(MachineConfig{Protection: Protection(99)}); err == nil {
		t.Error("unknown protection accepted")
	}
	m, err := NewMachine(MachineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("nil machine")
	}
}

func TestProtectionStrings(t *testing.T) {
	want := map[Protection]string{
		ProtectionNone:         "none",
		ProtectionEncrypt:      "encrypt-only",
		ProtectionObfusMem:     "obfusmem",
		ProtectionObfusMemAuth: "obfusmem+auth",
		ProtectionORAM:         "oram",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), s)
		}
	}
}

func TestBenchmarksList(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 15 {
		t.Fatalf("Benchmarks() returned %d names", len(bs))
	}
}

func TestRunBenchmarkAcrossProtections(t *testing.T) {
	var execs []Time
	for _, p := range []Protection{ProtectionNone, ProtectionEncrypt, ProtectionObfusMemAuth, ProtectionORAM} {
		m, err := NewMachine(MachineConfig{Protection: p, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.RunBenchmark("milc", 2000)
		if err != nil {
			t.Fatal(err)
		}
		if res.ExecTime <= 0 || res.Reads == 0 {
			t.Fatalf("%v: degenerate result %+v", p, res)
		}
		execs = append(execs, res.ExecTime)
	}
	// none <= encrypt <= obfusmem+auth << oram
	if !(execs[0] <= execs[1] && execs[1] <= execs[2] && execs[2] < execs[3]) {
		t.Fatalf("execution times out of order: %v", execs)
	}
}

func TestRunBenchmarkErrors(t *testing.T) {
	m, _ := NewMachine(MachineConfig{})
	if _, err := m.RunBenchmark("nope", 100); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := m.RunBenchmark("mcf", 0); err == nil {
		t.Error("zero requests accepted")
	}
}

func TestObserverAndTraffic(t *testing.T) {
	m, _ := NewMachine(MachineConfig{Protection: ProtectionObfusMemAuth, Seed: 5})
	obs := m.AttachObserver(1 << 16)
	if _, err := m.RunBenchmark("lbm", 1500); err != nil {
		t.Fatal(err)
	}
	if obs.Packets() == 0 {
		t.Fatal("observer saw nothing")
	}
	if got := obs.TemporalLeakage(); got != 0 {
		t.Fatalf("temporal leakage %v on ObfusMem machine", got)
	}
	ts := m.Traffic()
	if ts.RealReads == 0 || ts.PadsProcessor == 0 || ts.BusBytes == 0 {
		t.Fatalf("traffic counters empty: %+v", ts)
	}
	if ts.CryptoEnergyPJ <= 0 {
		t.Fatal("no crypto energy")
	}
}

func TestTampererDetection(t *testing.T) {
	m, _ := NewMachine(MachineConfig{Protection: ProtectionObfusMemAuth, Seed: 6})
	tmp := m.AttachTamperer(TamperModify, 4)
	if _, err := m.RunBenchmark("zeus", 1000); err != nil {
		t.Fatal(err)
	}
	ev := m.SecurityEvents()
	if tmp.Attacked == 0 {
		t.Fatal("no attacks mounted")
	}
	if ev.TamperDetected < uint64(tmp.Attacked) {
		t.Fatalf("detected %d of %d", ev.TamperDetected, tmp.Attacked)
	}
}

func TestDirectReadWrite(t *testing.T) {
	m, _ := NewMachine(MachineConfig{Protection: ProtectionObfusMem})
	done := m.Read(0, 4096)
	if done <= 0 {
		t.Fatal("read returned non-positive time")
	}
	m.Write(done, 8192)
	m.Drain(done * 2)
}

func TestPathORAMFacade(t *testing.T) {
	o, err := NewPathORAM(PathORAMConfig{Levels: 5, Z: 4, StashCapacity: 100, BlockBytes: 16}, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Access(ORAMWrite, 3, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := o.Access(ORAMRead, 3, nil)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
	if !errors.Is(ErrStashOverflow, ErrStashOverflow) {
		t.Fatal("sentinel error broken")
	}
	if DefaultPathORAMConfig().Levels != 24 {
		t.Fatal("default ORAM config is not the paper's")
	}
}

func TestExperimentFacadeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test is slow")
	}
	o := ExperimentOptions{Requests: 400, Seed: 11}
	t2 := Table2()
	if t2.Rows() == 0 {
		t.Fatal("Table2 empty")
	}
	t3 := Table3(o)
	if t3.Rows() != 16 { // 15 benchmarks + avg
		t.Fatalf("Table3 rows = %d", t3.Rows())
	}
	tam := Tampering(o)
	if tam.Rows() != 5 {
		t.Fatalf("Tampering rows = %d", tam.Rows())
	}
}

func TestRunHierarchyOnMachine(t *testing.T) {
	m, _ := NewMachine(MachineConfig{Protection: ProtectionObfusMemAuth, Seed: 8})
	w := DefaultHierarchyWorkload()
	res := m.RunHierarchy(w, 15000)
	if res.Instructions == 0 || res.IPC <= 0 || res.LLCMisses == 0 {
		t.Fatalf("degenerate hierarchy run: %+v", res)
	}
	// Organic misses flowed through the full ObfusMem path.
	tr := m.Traffic()
	if tr.RealReads == 0 || tr.DroppedAtMemory == 0 {
		t.Fatalf("hierarchy traffic did not reach ObfusMem: %+v", tr)
	}
}

func TestTimingObliviousOnMachine(t *testing.T) {
	m, _ := NewMachine(MachineConfig{
		Protection: ProtectionObfusMemAuth, TimingOblivious: true, Seed: 9})
	res, err := m.RunBenchmark("xalan", 800)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecTime <= 0 {
		t.Fatal("no execution")
	}
	tr := m.Traffic()
	if tr.DroppedAtMemory != 0 {
		t.Fatal("timing-oblivious machine dropped dummies")
	}
	if tr.DummyPCMWrites == 0 {
		t.Fatal("timing-oblivious dummies never hit PCM")
	}
}

func TestWearLevelOnMachine(t *testing.T) {
	m, _ := NewMachine(MachineConfig{Protection: ProtectionObfusMemAuth, WearLevel: true, Seed: 10})
	if _, err := m.RunBenchmark("lbm", 1500); err != nil {
		t.Fatal(err)
	}
	// Routing and decoding stay correct behind the leveller.
	if ev := m.SecurityEvents(); ev.SilentCorrupted != 0 || ev.TamperDetected != 0 {
		t.Fatalf("wear levelling broke the protected path: %+v", ev)
	}
}

func TestIntegrityTreeOnMachine(t *testing.T) {
	with, _ := NewMachine(MachineConfig{Protection: ProtectionEncrypt, IntegrityTree: true, Seed: 11})
	without, _ := NewMachine(MachineConfig{Protection: ProtectionEncrypt, Seed: 11})
	rw, _ := with.RunBenchmark("mcf", 1500)
	ro, _ := without.RunBenchmark("mcf", 1500)
	// Verification traffic adds bus bytes but (lazy checking) only mildly
	// affects latency.
	if with.Traffic().BusBytes <= without.Traffic().BusBytes {
		t.Fatal("integrity tree produced no extra memory traffic")
	}
	if rw.ExecTime < ro.ExecTime {
		t.Fatal("integrity tree made execution faster")
	}
}

func TestReplayTraceOnMachine(t *testing.T) {
	reqs, err := GenerateTrace("zeus", 1200, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := NewMachine(MachineConfig{Protection: ProtectionObfusMemAuth, Seed: 12})
	res := m.ReplayTrace("zeus-trace", reqs)
	if res.Requests != 1200 || res.ExecTime <= 0 {
		t.Fatalf("replay degenerate: %+v", res)
	}
	// Same trace on the same machine config is deterministic.
	m2, _ := NewMachine(MachineConfig{Protection: ProtectionObfusMemAuth, Seed: 12})
	res2 := m2.ReplayTrace("zeus-trace", reqs)
	if res.ExecTime != res2.ExecTime {
		t.Fatal("trace replay not deterministic")
	}
}
