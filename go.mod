module obfusmem

go 1.22
